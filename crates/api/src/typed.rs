//! The typed transactional data layer: zero-cost object handles over the
//! word-level [`Txn`] interface.
//!
//! Every data structure in this workspace ultimately stores `u64` words in
//! the shared [`rhtm_mem::TxHeap`], but hand-rolling `base.offset(KEY)`
//! arithmetic and pointer null-sentinels in every structure is exactly the
//! kind of per-structure duplication a production system cannot afford.
//! This module centralises it once:
//!
//! * [`Codec`] — values that pack into one heap word (`u64`, `bool`,
//!   `usize`, and null-tagged typed pointers),
//! * [`TxPtr<R>`] / `Option<TxPtr<R>>` — typed in-heap pointers with the
//!   null encoding ([`NULL_PTR_WORD`]) defined exactly once,
//! * [`TxCell<T>`] — a typed single word, readable/writable through any
//!   [`Txn`] (including `&mut dyn Txn`) or plainly through the heap,
//! * [`TxLayout`] / [`LayoutBuilder`] — a macro-free, `const`-evaluable
//!   record builder producing typed [`Field`]/[`FieldArray`] handles in
//!   place of hand-numbered offset constants,
//! * [`TypedAlloc`] — typed bump allocation over [`TmMemory`], with a
//!   checked [`Result`]-returning path ([`rhtm_mem::OutOfMemory`]) for
//!   prefill code that wants to report sizing errors cleanly,
//! * [`TxFreeList<R>`] — the transactional in-heap freelist idiom shared
//!   by shape-changing structures.
//!
//! # Zero cost
//!
//! Every method here is an `#[inline]` thin wrapper that compiles down to
//! the same `tx.read(addr)` / `tx.write(addr, raw)` calls the raw code
//! made: a [`TxCell<u64>`] read *is* a `Txn::read`, a
//! `TxCell::<Option<TxPtr<R>>>` read is a `Txn::read` plus one compare
//! against [`NULL_PTR_WORD`] — identical to the `decode_ptr` helpers the
//! structures used to copy around.  The word-level runtimes are untouched
//! and the per-access instrumentation costs the paper measures are
//! preserved bit-for-bit (`tests/typed_layer.rs` asserts this).
//!
//! # When to drop back to raw [`Txn`]
//!
//! The typed layer is for *data*.  Protocol metadata (stripe versions,
//! read masks, the global clock) is laid out by [`rhtm_mem::MemLayout`]
//! and accessed raw by the runtimes; workloads whose transaction body is
//! itself the experiment (e.g. the random-array workload's configurable
//! read/write stream over an untyped word region) may also prefer
//! [`TxSlice<u64>`] or plain addresses.
//!
//! # Example
//!
//! A two-field record with a typed link, allocated and linked
//! transactionally:
//!
//! ```
//! use rhtm_api::typed::{Field, LayoutBuilder, Record, TxCell, TxLayout, TxPtr, TypedAlloc};
//! use rhtm_api::{TmThread, Txn, TxResult};
//!
//! /// The record marker type: `TxPtr<Node>` only dereferences `Node` fields.
//! struct Node;
//!
//! /// Build the layout once, in a const: offsets are assigned by the
//! /// builder, not hand-numbered.
//! const NODE: (
//!     TxLayout<Node>,
//!     Field<Node, u64>,
//!     Field<Node, Option<TxPtr<Node>>>,
//! ) = {
//!     let b = LayoutBuilder::new();
//!     let (b, value) = b.field();
//!     let (b, next) = b.field();
//!     (b.finish(), value, next)
//! };
//! const VALUE: Field<Node, u64> = NODE.1;
//! const NEXT: Field<Node, Option<TxPtr<Node>>> = NODE.2;
//! impl Record for Node {
//!     const LAYOUT: TxLayout<Node> = NODE.0;
//! }
//!
//! fn push<T: Txn + ?Sized>(
//!     tx: &mut T,
//!     head: TxCell<Option<TxPtr<Node>>>,
//!     node: TxPtr<Node>,
//!     value: u64,
//! ) -> TxResult<()> {
//!     node.field(VALUE).write(tx, value)?;
//!     let old = head.read(tx)?;
//!     node.field(NEXT).write(tx, old)?;
//!     head.write(tx, Some(node))
//! }
//!
//! # use rhtm_api::test_runtime::DirectRuntime;
//! # use rhtm_api::TmRuntime;
//! let rt = DirectRuntime::new(256);
//! let mem = rt.mem();
//! let head: TxCell<Option<TxPtr<Node>>> = mem.alloc_cell();
//! head.store(mem.heap(), None);
//! let node = mem.alloc_record::<Node>();
//! let mut th = rt.register_thread();
//! th.execute(|tx| push(tx, head, node, 7));
//! let got = th.execute(|tx| head.read(tx)?.expect("pushed").field(VALUE).read(tx));
//! assert_eq!(got, 7);
//! ```

use std::marker::PhantomData;

use rhtm_mem::{Addr, OutOfMemory, TmMemory, TxHeap};

use crate::abort::TxResult;
use crate::traits::Txn;

/// The heap word encoding of a null typed pointer.
///
/// `u64::MAX` is never a valid heap index (the heap is far smaller), so it
/// doubles as the in-band null sentinel — the single definition that
/// replaces the `encode_ptr`/`decode_ptr` copies the benchmark structures
/// used to carry.
pub const NULL_PTR_WORD: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

/// A value that packs losslessly into one 64-bit heap word.
///
/// `decode(encode(v)) == v` must hold for every `v`; the typed layer's
/// bit-identity guarantee (a typed access performs exactly the raw word
/// access) additionally requires `encode` and `decode` to be pure.
///
/// ```
/// use rhtm_api::typed::Codec;
/// assert_eq!(u64::decode(u64::encode(42)), 42);
/// assert_eq!(bool::encode(true), 1);
/// assert_eq!(usize::decode(7), 7usize);
/// ```
pub trait Codec: Copy {
    /// Packs the value into a heap word.
    fn encode(self) -> u64;

    /// Unpacks a heap word written by [`Codec::encode`].
    fn decode(raw: u64) -> Self;
}

impl Codec for u64 {
    #[inline(always)]
    fn encode(self) -> u64 {
        self
    }

    #[inline(always)]
    fn decode(raw: u64) -> Self {
        raw
    }
}

impl Codec for bool {
    #[inline(always)]
    fn encode(self) -> u64 {
        self as u64
    }

    #[inline(always)]
    fn decode(raw: u64) -> Self {
        raw != 0
    }
}

impl Codec for usize {
    #[inline(always)]
    fn encode(self) -> u64 {
        self as u64
    }

    #[inline(always)]
    fn decode(raw: u64) -> Self {
        raw as usize
    }
}

// ---------------------------------------------------------------------
// Typed pointers
// ---------------------------------------------------------------------

/// A non-null typed pointer to a record of type `R` in the transactional
/// heap.
///
/// A `TxPtr<R>` is an [`Addr`] that remembers what it points at: its
/// [`field`](TxPtr::field)/[`slot`](TxPtr::slot) methods only accept
/// handles minted for `R`'s layout, so the `offset(NEXT_BASE + level)`
/// arithmetic the structures used to hand-roll cannot be misapplied to the
/// wrong record type.  It is `Copy` and one word large; nullability is
/// expressed in the type system as `Option<TxPtr<R>>`, whose [`Codec`]
/// impl owns the [`NULL_PTR_WORD`] sentinel.
///
/// ```
/// use rhtm_api::typed::{Codec, TxPtr};
/// use rhtm_mem::Addr;
///
/// struct Node;
/// let p: TxPtr<Node> = TxPtr::new(Addr(42));
/// assert_eq!(<Option<TxPtr<Node>>>::encode(Some(p)), 42);
/// assert_eq!(<Option<TxPtr<Node>>>::encode(None), u64::MAX);
/// assert_eq!(<Option<TxPtr<Node>>>::decode(42), Some(p));
/// ```
pub struct TxPtr<R> {
    addr: Addr,
    _record: PhantomData<fn() -> R>,
}

impl<R> TxPtr<R> {
    /// Wraps a heap address as a typed record pointer.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is the [`Addr::NULL`] sentinel; null is spelled
    /// `Option::<TxPtr<R>>::None`.
    #[inline(always)]
    pub fn new(addr: Addr) -> Self {
        assert!(!addr.is_null(), "TxPtr cannot wrap Addr::NULL; use None");
        TxPtr {
            addr,
            _record: PhantomData,
        }
    }

    /// The record's base address.
    #[inline(always)]
    pub fn addr(self) -> Addr {
        self.addr
    }

    /// The typed cell of scalar field `f` of this record.
    #[inline(always)]
    pub fn field<T: Codec>(self, f: Field<R, T>) -> TxCell<T> {
        TxCell::at(self.addr.offset(f.offset))
    }

    /// The typed cell of element `index` of array field `f`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `index < f.len()`.
    #[inline(always)]
    pub fn slot<T: Codec>(self, f: FieldArray<R, T>, index: usize) -> TxCell<T> {
        debug_assert!(index < f.len, "array field index {index} out of {}", f.len);
        TxCell::at(self.addr.offset(f.offset + index))
    }
}

impl<R> Clone for TxPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for TxPtr<R> {}
impl<R> PartialEq for TxPtr<R> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<R> Eq for TxPtr<R> {}
impl<R> std::hash::Hash for TxPtr<R> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.addr.hash(state)
    }
}
impl<R> std::fmt::Debug for TxPtr<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxPtr({:?})", self.addr)
    }
}

impl<R> Codec for TxPtr<R> {
    #[inline(always)]
    fn encode(self) -> u64 {
        self.addr.index() as u64
    }

    #[inline(always)]
    fn decode(raw: u64) -> Self {
        debug_assert_ne!(raw, NULL_PTR_WORD, "null word decoded as non-null TxPtr");
        TxPtr {
            addr: Addr(raw as usize),
            _record: PhantomData,
        }
    }
}

impl<R> Codec for Option<TxPtr<R>> {
    #[inline(always)]
    fn encode(self) -> u64 {
        match self {
            Some(p) => p.encode(),
            None => NULL_PTR_WORD,
        }
    }

    #[inline(always)]
    fn decode(raw: u64) -> Self {
        if raw == NULL_PTR_WORD {
            None
        } else {
            Some(TxPtr {
                addr: Addr(raw as usize),
                _record: PhantomData,
            })
        }
    }
}

// ---------------------------------------------------------------------
// Typed cells and slices
// ---------------------------------------------------------------------

/// A typed single heap word.
///
/// The fundamental unit of the typed layer: every access is a thin
/// `#[inline]` wrapper over the corresponding word operation, so typed and
/// raw code compile to the same loads and stores.
///
/// ```
/// use rhtm_api::test_runtime::DirectRuntime;
/// use rhtm_api::typed::{TxCell, TypedAlloc};
/// use rhtm_api::{TmRuntime, TmThread};
///
/// let rt = DirectRuntime::new(64);
/// let flag: TxCell<bool> = rt.mem().alloc_cell();
/// let mut th = rt.register_thread();
/// th.execute(|tx| flag.write(tx, true));
/// assert!(th.execute(|tx| flag.read(tx)));
/// assert_eq!(rt.mem().heap().load(flag.addr()), 1);
/// ```
pub struct TxCell<T> {
    addr: Addr,
    _value: PhantomData<fn() -> T>,
}

impl<T: Codec> TxCell<T> {
    /// A typed view of the word at `addr`.
    #[inline(always)]
    pub fn at(addr: Addr) -> Self {
        TxCell {
            addr,
            _value: PhantomData,
        }
    }

    /// The underlying word address (for interop with raw [`Txn`] code and
    /// the non-transactional `nt_*` simulator accessors).
    #[inline(always)]
    pub fn addr(self) -> Addr {
        self.addr
    }

    /// Transactionally reads the cell.
    #[inline(always)]
    pub fn read<X: Txn + ?Sized>(self, tx: &mut X) -> TxResult<T> {
        Ok(T::decode(tx.read(self.addr)?))
    }

    /// Transactionally writes the cell.
    #[inline(always)]
    pub fn write<X: Txn + ?Sized>(self, tx: &mut X, value: T) -> TxResult<()> {
        tx.write(self.addr, value.encode())
    }

    /// Plain (non-transactional) load, for single-threaded construction
    /// and quiescent checks.
    #[inline(always)]
    pub fn load(self, heap: &TxHeap) -> T {
        T::decode(heap.load(self.addr))
    }

    /// Plain (non-transactional) store, for single-threaded construction.
    #[inline(always)]
    pub fn store(self, heap: &TxHeap, value: T) {
        heap.store(self.addr, value.encode())
    }

    /// Relaxed (non-transactional) load; sound only on data no other
    /// thread is concurrently writing (construction, quiescent checks).
    #[inline(always)]
    pub fn load_relaxed(self, heap: &TxHeap) -> T {
        T::decode(heap.load_relaxed(self.addr))
    }

    /// Relaxed (non-transactional) store — the bulk-prefill path.  Only
    /// sound during single-threaded construction, before any worker thread
    /// exists; spawning the workers publishes these stores.
    #[inline(always)]
    pub fn store_relaxed(self, heap: &TxHeap, value: T) {
        heap.store_relaxed(self.addr, value.encode())
    }
}

impl<T> Clone for TxCell<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TxCell<T> {}
impl<T> PartialEq for TxCell<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T> Eq for TxCell<T> {}
impl<T> std::fmt::Debug for TxCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxCell({:?})", self.addr)
    }
}

/// A typed, fixed-length array of heap words (bucket arrays, ring-buffer
/// slot arrays, raw word regions).
pub struct TxSlice<T> {
    base: Addr,
    len: usize,
    _value: PhantomData<fn() -> T>,
}

impl<T: Codec> TxSlice<T> {
    /// A typed view of the `len` words starting at `base`.
    #[inline(always)]
    pub fn at(base: Addr, len: usize) -> Self {
        TxSlice {
            base,
            len,
            _value: PhantomData,
        }
    }

    /// First word address.
    #[inline(always)]
    pub fn base(self) -> Addr {
        self.base
    }

    /// Number of elements.
    #[inline(always)]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.len
    }

    /// The typed cell of element `index`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `index < len` (the heap itself bounds-checks in every
    /// build).
    #[inline(always)]
    pub fn get(self, index: usize) -> TxCell<T> {
        debug_assert!(index < self.len, "slice index {index} out of {}", self.len);
        TxCell::at(self.base.offset(index))
    }

    /// Iterates the element cells (construction/verification helper).
    pub fn iter(self) -> impl Iterator<Item = TxCell<T>> {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl<T> Clone for TxSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TxSlice<T> {}
impl<T> std::fmt::Debug for TxSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxSlice({:?}, len {})", self.base, self.len)
    }
}

/// A typed view of `len` contiguous records of type `R` (node pools the
/// constant structures carve up by key).
///
/// [`TxRecords::get`] owns the record-stride arithmetic
/// (`base + index * R::WORDS`), so constructors never multiply by a word
/// count by hand — the mistake that silently mints a misaligned pointer.
pub struct TxRecords<R> {
    base: Addr,
    len: usize,
    _record: PhantomData<fn() -> R>,
}

impl<R: Record> TxRecords<R> {
    /// A typed view of the `len * R::WORDS` words starting at `base`.
    #[inline(always)]
    pub fn at(base: Addr, len: usize) -> Self {
        TxRecords {
            base,
            len,
            _record: PhantomData,
        }
    }

    /// First record's address.
    #[inline(always)]
    pub fn base(self) -> Addr {
        self.base
    }

    /// Number of records.
    #[inline(always)]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.len
    }

    /// The pointer to record `index`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `index < len` (the heap itself bounds-checks in every
    /// build).
    #[inline(always)]
    pub fn get(self, index: usize) -> TxPtr<R> {
        debug_assert!(index < self.len, "record index {index} out of {}", self.len);
        TxPtr::new(self.base.offset(index * R::WORDS))
    }

    /// Iterates the record pointers (construction/verification helper).
    pub fn iter(self) -> impl Iterator<Item = TxPtr<R>> {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl<R> Clone for TxRecords<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for TxRecords<R> {}
impl<R> std::fmt::Debug for TxRecords<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxRecords({:?}, len {})", self.base, self.len)
    }
}

// ---------------------------------------------------------------------
// Record layouts
// ---------------------------------------------------------------------

/// A typed scalar-field handle: the offset of one word inside records of
/// type `R`, carrying the field's value type `T`.
///
/// Minted by [`LayoutBuilder::field`] (or [`FieldArray::slot_field`]); the
/// phantom `R` prevents a field handle from being used on a pointer to a
/// different record type.
pub struct Field<R, T> {
    offset: usize,
    _marker: PhantomData<fn() -> (R, T)>,
}

impl<R, T: Codec> Field<R, T> {
    /// The word offset inside the record.
    #[inline(always)]
    pub const fn offset(self) -> usize {
        self.offset
    }
}

impl<R, T> Clone for Field<R, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R, T> Copy for Field<R, T> {}
impl<R, T> std::fmt::Debug for Field<R, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field(+{})", self.offset)
    }
}

/// A typed array-field handle: `len` consecutive words inside records of
/// type `R` (skiplist towers, dummy payload blocks).
pub struct FieldArray<R, T> {
    offset: usize,
    len: usize,
    _marker: PhantomData<fn() -> (R, T)>,
}

impl<R, T: Codec> FieldArray<R, T> {
    /// The word offset of element 0 inside the record.
    #[inline(always)]
    pub const fn offset(self) -> usize {
        self.offset
    }

    /// Number of elements.
    #[inline(always)]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> usize {
        self.len
    }

    /// The scalar-field handle of element `index`, for APIs that want one
    /// designated slot (e.g. [`TxFreeList`] reusing a link array's level-0
    /// slot as the free-chain link).
    ///
    /// # Panics
    ///
    /// Panics (at compile time in const contexts) if `index >= len`.
    #[inline(always)]
    pub const fn slot_field(self, index: usize) -> Field<R, T> {
        assert!(index < self.len, "array field slot out of bounds");
        Field {
            offset: self.offset + index,
            _marker: PhantomData,
        }
    }
}

impl<R, T> Clone for FieldArray<R, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R, T> Copy for FieldArray<R, T> {}
impl<R, T> std::fmt::Debug for FieldArray<R, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FieldArray(+{}, len {})", self.offset, self.len)
    }
}

/// The sealed word layout of a record type `R`: how many heap words one
/// record occupies.  Built once (usually in a `const`) by
/// [`LayoutBuilder`]; see the [module docs](self) for the idiom.
pub struct TxLayout<R> {
    words: usize,
    _record: PhantomData<fn() -> R>,
}

impl<R> TxLayout<R> {
    /// Heap words per record.
    #[inline(always)]
    pub const fn words(self) -> usize {
        self.words
    }
}

impl<R> Clone for TxLayout<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for TxLayout<R> {}
impl<R> std::fmt::Debug for TxLayout<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxLayout({} words)", self.words)
    }
}

/// Macro-free, `const`-evaluable builder of a record layout.
///
/// Fields are appended in declaration order; each append returns the
/// advanced builder plus the typed handle, so the whole layout is a single
/// const expression and no offset is ever hand-numbered:
///
/// ```
/// use rhtm_api::typed::{Field, FieldArray, LayoutBuilder, TxLayout};
///
/// struct Node;
/// const NODE: (TxLayout<Node>, Field<Node, u64>, FieldArray<Node, u64>) = {
///     let b = LayoutBuilder::new();
///     let (b, key) = b.field();
///     let (b, dummies) = b.array(4);
///     (b.pad_to(8).finish(), key, dummies)
/// };
/// assert_eq!(NODE.0.words(), 8);
/// assert_eq!(NODE.1.offset(), 0);
/// assert_eq!(NODE.2.offset(), 1);
/// ```
pub struct LayoutBuilder<R> {
    next: usize,
    _record: PhantomData<fn() -> R>,
}

impl<R> LayoutBuilder<R> {
    /// An empty layout.
    #[allow(clippy::new_without_default)] // const-context builder; Default is never wanted
    pub const fn new() -> Self {
        LayoutBuilder {
            next: 0,
            _record: PhantomData,
        }
    }

    /// Appends one scalar field of type `T`, returning the advanced
    /// builder and the field's typed handle.
    pub const fn field<T: Codec>(self) -> (Self, Field<R, T>) {
        let handle = Field {
            offset: self.next,
            _marker: PhantomData,
        };
        (
            LayoutBuilder {
                next: self.next + 1,
                _record: PhantomData,
            },
            handle,
        )
    }

    /// Appends an array field of `len` words of type `T`.
    pub const fn array<T: Codec>(self, len: usize) -> (Self, FieldArray<R, T>) {
        let handle = FieldArray {
            offset: self.next,
            len,
            _marker: PhantomData,
        };
        (
            LayoutBuilder {
                next: self.next + len,
                _record: PhantomData,
            },
            handle,
        )
    }

    /// Pads the record up to `words` total words (e.g. to a cache-line
    /// multiple so adjacent records never share a line).
    ///
    /// # Panics
    ///
    /// Panics (at compile time in const contexts) if the fields already
    /// exceed `words`.
    pub const fn pad_to(self, words: usize) -> Self {
        assert!(self.next <= words, "record fields exceed padded size");
        LayoutBuilder {
            next: words,
            _record: PhantomData,
        }
    }

    /// Seals the layout.
    pub const fn finish(self) -> TxLayout<R> {
        TxLayout {
            words: self.next,
            _record: PhantomData,
        }
    }
}

/// A record type with a known heap layout, allocatable through
/// [`TypedAlloc`].
///
/// Implemented on zero-sized marker types; the marker never exists at
/// runtime — it only types the pointers, cells and field handles.
pub trait Record: Sized + 'static {
    /// The record's sealed layout.
    const LAYOUT: TxLayout<Self>;

    /// Heap words per record (sugar for `Self::LAYOUT.words()`).
    const WORDS: usize = Self::LAYOUT.words();
}

// ---------------------------------------------------------------------
// Typed allocation
// ---------------------------------------------------------------------

/// Typed bump allocation over [`TmMemory`].
///
/// The panicking variants mirror [`TmMemory::alloc`] (exhaustion is a
/// sizing bug); the `try_` variants return [`OutOfMemory`] so prefill code
/// can attach context (which structure, which `required_words` helper)
/// before reporting.
pub trait TypedAlloc {
    /// Allocates one record of type `R`.
    fn alloc_record<R: Record>(&self) -> TxPtr<R>;

    /// Checked variant of [`TypedAlloc::alloc_record`].
    fn try_alloc_record<R: Record>(&self) -> Result<TxPtr<R>, OutOfMemory>;

    /// Allocates `len` contiguous records of type `R` (a node pool).
    fn alloc_records<R: Record>(&self, len: usize) -> TxRecords<R>;

    /// Checked variant of [`TypedAlloc::alloc_records`].
    fn try_alloc_records<R: Record>(&self, len: usize) -> Result<TxRecords<R>, OutOfMemory>;

    /// Allocates one typed word.
    fn alloc_cell<T: Codec>(&self) -> TxCell<T>;

    /// Checked variant of [`TypedAlloc::alloc_cell`].
    fn try_alloc_cell<T: Codec>(&self) -> Result<TxCell<T>, OutOfMemory>;

    /// Allocates one typed word on its own cache line (for hot cursors
    /// whose conflicts must stay semantic, not false sharing).
    fn alloc_cell_line_aligned<T: Codec>(&self) -> TxCell<T>;

    /// Checked variant of [`TypedAlloc::alloc_cell_line_aligned`].
    fn try_alloc_cell_line_aligned<T: Codec>(&self) -> Result<TxCell<T>, OutOfMemory>;

    /// Allocates a typed array of `len` words.
    fn alloc_slice<T: Codec>(&self, len: usize) -> TxSlice<T>;

    /// Checked variant of [`TypedAlloc::alloc_slice`].
    fn try_alloc_slice<T: Codec>(&self, len: usize) -> Result<TxSlice<T>, OutOfMemory>;

    /// Allocates a typed array of `len` words starting on a cache line.
    fn alloc_slice_line_aligned<T: Codec>(&self, len: usize) -> TxSlice<T>;

    /// Checked variant of [`TypedAlloc::alloc_slice_line_aligned`].
    fn try_alloc_slice_line_aligned<T: Codec>(&self, len: usize)
        -> Result<TxSlice<T>, OutOfMemory>;
}

impl TypedAlloc for TmMemory {
    #[inline]
    fn alloc_record<R: Record>(&self) -> TxPtr<R> {
        TxPtr::new(self.alloc(R::WORDS))
    }

    #[inline]
    fn try_alloc_record<R: Record>(&self) -> Result<TxPtr<R>, OutOfMemory> {
        Ok(TxPtr::new(self.try_alloc(R::WORDS)?))
    }

    #[inline]
    fn alloc_records<R: Record>(&self, len: usize) -> TxRecords<R> {
        match self.try_alloc_records(len) {
            Ok(records) => records,
            Err(oom) => panic!("{oom}"),
        }
    }

    #[inline]
    fn try_alloc_records<R: Record>(&self, len: usize) -> Result<TxRecords<R>, OutOfMemory> {
        // saturating_mul: a wrapped word count would silently under-allocate
        // a pool that still claims `len` records.
        let words = len.saturating_mul(R::WORDS);
        Ok(TxRecords::at(self.try_alloc(words)?, len))
    }

    #[inline]
    fn alloc_cell<T: Codec>(&self) -> TxCell<T> {
        TxCell::at(self.alloc(1))
    }

    #[inline]
    fn try_alloc_cell<T: Codec>(&self) -> Result<TxCell<T>, OutOfMemory> {
        Ok(TxCell::at(self.try_alloc(1)?))
    }

    #[inline]
    fn alloc_cell_line_aligned<T: Codec>(&self) -> TxCell<T> {
        TxCell::at(self.alloc_line_aligned(1))
    }

    #[inline]
    fn try_alloc_cell_line_aligned<T: Codec>(&self) -> Result<TxCell<T>, OutOfMemory> {
        Ok(TxCell::at(self.try_alloc_line_aligned(1)?))
    }

    #[inline]
    fn alloc_slice<T: Codec>(&self, len: usize) -> TxSlice<T> {
        TxSlice::at(self.alloc(len), len)
    }

    #[inline]
    fn try_alloc_slice<T: Codec>(&self, len: usize) -> Result<TxSlice<T>, OutOfMemory> {
        Ok(TxSlice::at(self.try_alloc(len)?, len))
    }

    #[inline]
    fn alloc_slice_line_aligned<T: Codec>(&self, len: usize) -> TxSlice<T> {
        TxSlice::at(self.alloc_line_aligned(len), len)
    }

    #[inline]
    fn try_alloc_slice_line_aligned<T: Codec>(
        &self,
        len: usize,
    ) -> Result<TxSlice<T>, OutOfMemory> {
        Ok(TxSlice::at(self.try_alloc_line_aligned(len)?, len))
    }
}

/// Unwrap-with-sizing-hint for checked allocation results: the one place
/// the "allocation failed: …; size the heap with `X::required_words(…)`"
/// panic message is spelled, so every structure reports sizing mistakes
/// uniformly.
///
/// ```should_panic
/// use rhtm_api::typed::{OrSized, TypedAlloc, TxSlice};
/// use rhtm_mem::{MemConfig, TmMemory};
///
/// let mem = TmMemory::new(MemConfig::with_data_words(8));
/// let _: TxSlice<u64> =
///     mem.try_alloc_slice(1 << 20).or_sized("MyQueue::required_words(capacity)");
/// ```
pub trait OrSized<T> {
    /// Returns the allocation, or panics naming the `required_words`-style
    /// sizing helper the caller should have used.
    fn or_sized(self, hint: &str) -> T;
}

impl<T> OrSized<T> for Result<T, OutOfMemory> {
    #[inline]
    fn or_sized(self, hint: &str) -> T {
        self.unwrap_or_else(|oom| panic!("allocation failed: {oom}; size the heap with {hint}"))
    }
}

// ---------------------------------------------------------------------
// Transactional freelist
// ---------------------------------------------------------------------

/// A transactional in-heap freelist of `R` records.
///
/// **Legacy compatibility API.**  The workspace structures have migrated
/// to [`crate::reclaim::NodePool`], which recycles through per-thread
/// epoch-stamped pools instead of a shared transactional chain: pushing
/// the free link through the write set made every remove/insert pair
/// conflict on the freelist head, and nodes were recycled the instant the
/// remove committed, which is only sound while *all* traversals are fully
/// transactional.  The type stays for out-of-tree users of the idiom and
/// as the reference point the epoch scheme is argued against (see
/// `docs/ARCHITECTURE.md`, "Memory subsystem").
///
/// The original idiom: removed records are pushed here and reused by
/// later inserts *inside the same transactional world* — every link
/// traversal is a transactional read, so there is no ABA.  One designated
/// link field of the record doubles as the free-chain link (free records
/// are unreachable from the live structure, so the reuse is safe).
pub struct TxFreeList<R: Record> {
    head: TxCell<Option<TxPtr<R>>>,
    link: Field<R, Option<TxPtr<R>>>,
}

impl<R: Record> TxFreeList<R> {
    /// Creates an empty freelist whose chain runs through `link`,
    /// allocating (and initialising) the one-word head in `mem`.
    pub fn new(mem: &TmMemory, link: Field<R, Option<TxPtr<R>>>) -> Self {
        match Self::try_new(mem, link) {
            Ok(list) => list,
            Err(oom) => panic!("{oom}"),
        }
    }

    /// Checked variant of [`TxFreeList::new`].
    pub fn try_new(mem: &TmMemory, link: Field<R, Option<TxPtr<R>>>) -> Result<Self, OutOfMemory> {
        let head: TxCell<Option<TxPtr<R>>> = mem.try_alloc_cell()?;
        head.store(mem.heap(), None);
        Ok(TxFreeList { head, link })
    }

    /// The head cell (for non-transactional emptiness peeks outside a
    /// transaction, e.g. deciding whether to pre-allocate a spare).
    #[inline(always)]
    pub fn head(&self) -> TxCell<Option<TxPtr<R>>> {
        self.head
    }

    /// Transactionally pushes `node` onto the freelist.
    #[inline]
    pub fn push<X: Txn + ?Sized>(&self, tx: &mut X, node: TxPtr<R>) -> TxResult<()> {
        let old = self.head.read(tx)?;
        node.field(self.link).write(tx, old)?;
        self.head.write(tx, Some(node))
    }

    /// Transactionally pops a record, or `None` when the list is empty.
    #[inline]
    pub fn pop<X: Txn + ?Sized>(&self, tx: &mut X) -> TxResult<Option<TxPtr<R>>> {
        match self.head.read(tx)? {
            Some(node) => {
                let next = node.field(self.link).read(tx)?;
                self.head.write(tx, next)?;
                Ok(Some(node))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runtime::DirectRuntime;
    use crate::traits::{TmRuntime, TmThread};

    struct Pair;
    #[allow(clippy::type_complexity)] // the layout-builder tuple idiom
    const PAIR: (
        TxLayout<Pair>,
        Field<Pair, u64>,
        Field<Pair, Option<TxPtr<Pair>>>,
        FieldArray<Pair, bool>,
    ) = {
        let b = LayoutBuilder::new();
        let (b, value) = b.field();
        let (b, next) = b.field();
        let (b, flags) = b.array(3);
        (b.pad_to(8).finish(), value, next, flags)
    };
    impl Record for Pair {
        const LAYOUT: TxLayout<Pair> = PAIR.0;
    }
    const VALUE: Field<Pair, u64> = PAIR.1;
    const NEXT: Field<Pair, Option<TxPtr<Pair>>> = PAIR.2;
    const FLAGS: FieldArray<Pair, bool> = PAIR.3;

    #[test]
    fn builder_assigns_sequential_offsets_and_padding() {
        assert_eq!(VALUE.offset(), 0);
        assert_eq!(NEXT.offset(), 1);
        assert_eq!(FLAGS.offset(), 2);
        assert_eq!(FLAGS.len(), 3);
        assert_eq!(Pair::WORDS, 8);
        assert_eq!(FLAGS.slot_field(2).offset(), 4);
    }

    #[test]
    fn codec_round_trips_scalars_and_pointers() {
        for raw in [0u64, 1, 42, u64::MAX - 1] {
            assert_eq!(u64::decode(u64::encode(raw)), raw);
            assert_eq!(usize::decode(usize::encode(raw as usize)), raw as usize);
        }
        assert!(bool::decode(bool::encode(true)));
        assert!(!bool::decode(bool::encode(false)));
        let p: TxPtr<Pair> = TxPtr::new(Addr(99));
        assert_eq!(TxPtr::<Pair>::decode(p.encode()), p);
        assert_eq!(<Option<TxPtr<Pair>>>::encode(None), NULL_PTR_WORD);
        assert_eq!(<Option<TxPtr<Pair>>>::decode(NULL_PTR_WORD), None);
        assert_eq!(<Option<TxPtr<Pair>>>::decode(p.encode()), Some(p));
    }

    #[test]
    #[should_panic(expected = "Addr::NULL")]
    fn null_addr_cannot_become_a_ptr() {
        let _ = TxPtr::<Pair>::new(Addr::NULL);
    }

    #[test]
    fn cells_read_and_write_through_a_transaction() {
        let rt = DirectRuntime::new(128);
        let node = rt.mem().alloc_record::<Pair>();
        let other = rt.mem().alloc_record::<Pair>();
        let mut th = rt.register_thread();
        th.execute(|tx| {
            node.field(VALUE).write(tx, 7)?;
            node.field(NEXT).write(tx, Some(other))?;
            node.slot(FLAGS, 1).write(tx, true)?;
            Ok(())
        });
        let (v, n, f0, f1) = th.execute(|tx| {
            Ok((
                node.field(VALUE).read(tx)?,
                node.field(NEXT).read(tx)?,
                node.slot(FLAGS, 0).read(tx)?,
                node.slot(FLAGS, 1).read(tx)?,
            ))
        });
        assert_eq!(v, 7);
        assert_eq!(n, Some(other));
        assert!(!f0);
        assert!(f1);
        // The typed writes are the raw words (bit-identity).
        let heap = rt.mem().heap();
        assert_eq!(heap.load(node.addr()), 7);
        assert_eq!(
            heap.load(node.addr().offset(1)),
            other.addr().index() as u64
        );
        assert_eq!(heap.load(node.addr().offset(3)), 1);
    }

    #[test]
    fn slices_are_typed_views_of_word_ranges() {
        let rt = DirectRuntime::new(128);
        let slice: TxSlice<u64> = rt.mem().alloc_slice(8);
        assert_eq!(slice.len(), 8);
        for (i, cell) in slice.iter().enumerate() {
            cell.store(rt.mem().heap(), i as u64 * 3);
        }
        let mut th = rt.register_thread();
        let sum = th.execute(|tx| {
            let mut s = 0;
            for i in 0..slice.len() {
                s += slice.get(i).read(tx)?;
            }
            Ok(s)
        });
        assert_eq!(sum, (0..8).map(|i| i * 3).sum());
    }

    #[test]
    fn line_aligned_allocations_start_on_a_line() {
        let rt = DirectRuntime::new(256);
        let c: TxCell<u64> = rt.mem().alloc_cell_line_aligned();
        assert_eq!(c.addr().index() % rhtm_mem::CACHE_LINE_WORDS, 0);
        let s: TxSlice<u64> = rt.mem().alloc_slice_line_aligned(4);
        assert_eq!(s.base().index() % rhtm_mem::CACHE_LINE_WORDS, 0);
    }

    #[test]
    fn checked_allocation_reports_out_of_memory() {
        let rt = DirectRuntime::new(8);
        // Drain the region, then every checked path must fail cleanly.
        while rt.mem().try_alloc(Pair::WORDS).is_ok() {}
        assert!(rt.mem().try_alloc_record::<Pair>().is_err());
        assert!(rt.mem().try_alloc_slice::<u64>(64).is_err());
        assert!(rt.mem().try_alloc_slice_line_aligned::<u64>(64).is_err());
        assert!(rt.mem().try_alloc_cell_line_aligned::<u64>().is_err());
        // A record count whose word total would wrap must report, not
        // under-allocate a pool that still claims `len` records.
        assert!(rt.mem().try_alloc_records::<Pair>(usize::MAX / 2).is_err());
        // At most `Pair::WORDS - 1` loose words remain for single cells.
        let mut cells = 0;
        while rt.mem().try_alloc_cell::<u64>().is_ok() {
            cells += 1;
        }
        assert!(cells < Pair::WORDS);
    }

    #[test]
    fn freelist_recycles_in_lifo_order() {
        let rt = DirectRuntime::new(256);
        let free: TxFreeList<Pair> = TxFreeList::new(rt.mem(), NEXT);
        let a = rt.mem().alloc_record::<Pair>();
        let b = rt.mem().alloc_record::<Pair>();
        let mut th = rt.register_thread();
        th.execute(|tx| {
            free.push(tx, a)?;
            free.push(tx, b)?;
            Ok(())
        });
        let (x, y, z) = th.execute(|tx| Ok((free.pop(tx)?, free.pop(tx)?, free.pop(tx)?)));
        assert_eq!(x, Some(b));
        assert_eq!(y, Some(a));
        assert_eq!(z, None);
        assert_eq!(free.head().load(rt.mem().heap()), None);
    }
}
