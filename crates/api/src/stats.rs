//! Per-thread execution statistics and the optional fine-grained timing
//! used to reproduce the paper's single-thread performance-breakdown table
//! (Figure 2 bottom and the embedded `20_100_R` / `80_100_R` tables).

use std::time::{Duration, Instant};

use rhtm_mem::MemMetrics;

use crate::abort::AbortCause;

/// Which execution path a transaction committed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// The all-hardware fast-path.
    HardwareFast,
    /// The mixed mostly-software slow-path (RH1/RH2: software body, hardware
    /// commit).
    MixedSlow,
    /// A pure software path (TL2, the Standard-HyTM software fallback, or
    /// the RH2 all-software slow-slow-path).
    Software,
}

impl PathKind {
    /// All paths in display order.
    pub const ALL: [PathKind; 3] = [
        PathKind::HardwareFast,
        PathKind::MixedSlow,
        PathKind::Software,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PathKind::HardwareFast => 0,
            PathKind::MixedSlow => 1,
            PathKind::Software => 2,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PathKind::HardwareFast => "hw-fast",
            PathKind::MixedSlow => "mixed-slow",
            PathKind::Software => "software",
        }
    }

    /// Snake-case key used in machine-readable (JSON) reports.
    ///
    /// This string is part of the stable schema emitted by
    /// `rhtm_workloads::report::to_json` and the `bench_suite` binary
    /// (`commits_<json_key>` fields); renaming it is a breaking schema
    /// change for downstream plotting scripts.
    pub fn json_key(self) -> &'static str {
        match self {
            PathKind::HardwareFast => "hw_fast",
            PathKind::MixedSlow => "mixed_slow",
            PathKind::Software => "software",
        }
    }
}

/// A before/after snapshot of the per-path commit counters, used to tag an
/// individual operation with the commit path it actually took.
///
/// The runtimes record commits into [`TxStats::commits_by_path`] but expose
/// no per-transaction signal; diffing the counters around one operation
/// recovers it after the fact.  History recorders use this to annotate each
/// recorded event, so a failed invariant can report *which* commit path the
/// offending operations ran on — the difference between "RH1's mixed
/// slow-path lost an update" and "the software fallback did" without
/// re-running anything.
///
/// ```
/// use rhtm_api::test_runtime::DirectRuntime;
/// use rhtm_api::{PathKind, PathProbe, TmRuntime, TmThread, Txn};
///
/// let rt = DirectRuntime::new(64);
/// let addr = rt.mem().alloc(1);
/// let mut th = rt.register_thread();
/// let probe = PathProbe::start(th.stats());
/// th.execute(|tx| tx.write(addr, 7));
/// assert_eq!(probe.finish(th.stats()), Some(PathKind::Software));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PathProbe {
    before: [u64; 3],
}

impl PathProbe {
    /// Snapshots the commit counters before the operation runs.
    #[inline]
    pub fn start(stats: &TxStats) -> Self {
        PathProbe {
            before: stats.commits_by_path,
        }
    }

    /// Diffs against the counters after the operation: the path whose
    /// counter grew the most (ties broken in [`PathKind::ALL`] order), or
    /// `None` when no commit was recorded in between.
    ///
    /// An operation that retried across paths (e.g. a helper loop that
    /// committed several transactions) reports its *dominant* path.
    #[inline]
    pub fn finish(self, stats: &TxStats) -> Option<PathKind> {
        let mut best: Option<PathKind> = None;
        let mut best_delta = 0u64;
        for path in PathKind::ALL {
            let delta = stats.commits_by_path[path.index()] - self.before[path.index()];
            if delta > best_delta {
                best_delta = delta;
                best = Some(path);
            }
        }
        best
    }
}

/// A start/stop timer that is free when timing is disabled.
///
/// Runtimes wrap their read/write/commit sections with a `Stopwatch` and add
/// the elapsed time into [`TxStats`]; when the stats object has timing
/// disabled the stopwatch never calls `Instant::now`, so the common
/// benchmarking configuration pays nothing.
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a stopwatch if `enabled`.
    #[inline(always)]
    pub fn start(enabled: bool) -> Self {
        Stopwatch {
            start: if enabled { Some(Instant::now()) } else { None },
        }
    }

    /// Elapsed nanoseconds, or 0 when timing was disabled.
    #[inline(always)]
    pub fn stop(self) -> u64 {
        match self.start {
            Some(t) => t.elapsed().as_nanos() as u64,
            None => 0,
        }
    }
}

/// Always-on observability counters for the retry layer ("Retry 2.0").
///
/// Every runtime records the post-clamp outcome of each retry decision and
/// the abort cause that triggered it; the Retry 2.0 policies
/// ([`crate::retry2`]) additionally record circuit-breaker state
/// transitions and retry-budget exhaustion events.  All counters are plain
/// per-thread `u64` increments on the abort path (never on the commit fast
/// path), so the surface is cheap enough to stay on in every benchmark —
/// the numbers flow through [`TxStats::merge`] into the `bench_suite` /
/// `bench_trajectory` JSON as the `retry_metrics` object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryMetrics {
    /// Post-clamp decisions that retried on the same path.
    pub retry_here: u64,
    /// Post-clamp decisions that demoted to a slower tier.
    pub demote: u64,
    /// Post-clamp decisions that retried after an explicit backoff window.
    pub backoff: u64,
    /// Abort causes observed at retry decision sites, indexed by
    /// [`AbortCause::index`].  This is the retry layer's own histogram: it
    /// counts causes *as seen by the policy*, which a runtime-level abort
    /// counter cannot split out per decision site.
    pub causes: [u64; 8],
    /// Circuit-breaker transitions into `Open` (including a failed
    /// half-open probe re-opening the circuit).
    pub circuit_opens: u64,
    /// Half-open probes admitted back onto the hardware path.
    pub circuit_probes: u64,
    /// Circuit-breaker transitions from `HalfOpen` back to `Closed`.
    pub circuit_closes: u64,
    /// Retry-budget exhaustion events (token bucket empty, retry shed into
    /// a demotion).
    pub budget_exhausted: u64,
}

impl RetryMetrics {
    /// Total retry decisions recorded.
    #[inline]
    pub fn decisions(&self) -> u64 {
        self.retry_here + self.demote + self.backoff
    }

    /// Records the abort cause observed at a decision site.
    #[inline(always)]
    pub fn record_cause(&mut self, cause: AbortCause) {
        self.causes[cause.index()] += 1;
    }

    /// Abort causes recorded for one specific cause at decision sites.
    pub fn cause_count(&self, cause: AbortCause) -> u64 {
        self.causes[cause.index()]
    }

    /// Merges another thread's retry metrics into this one.
    pub fn merge(&mut self, other: &RetryMetrics) {
        self.retry_here += other.retry_here;
        self.demote += other.demote;
        self.backoff += other.backoff;
        for i in 0..self.causes.len() {
            self.causes[i] += other.causes[i];
        }
        self.circuit_opens += other.circuit_opens;
        self.circuit_probes += other.circuit_probes;
        self.circuit_closes += other.circuit_closes;
        self.budget_exhausted += other.budget_exhausted;
    }
}

/// Per-thread transactional execution statistics.
///
/// Counters are plain `u64`s updated by the owning thread only; the
/// benchmark driver merges the per-thread copies after the measurement
/// interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Committed transactions, per commit path.
    pub commits_by_path: [u64; 3],
    /// Aborted attempts, per cause.
    pub aborts_by_cause: [u64; 8],
    /// Transactional read operations performed (all attempts, including
    /// aborted ones — this matches the paper's "Read Counter").
    pub reads: u64,
    /// Transactional write operations performed (all attempts).
    pub writes: u64,
    /// Hardware-transaction commit instructions that succeeded (fast-path
    /// commits plus slow-path commit-time hardware transactions).
    pub htm_commits: u64,
    /// Hardware-transaction attempts that aborted.
    pub htm_aborts: u64,
    /// Nanoseconds spent inside transactional reads (timing mode only).
    pub read_ns: u64,
    /// Nanoseconds spent inside transactional writes (timing mode only).
    pub write_ns: u64,
    /// Nanoseconds spent inside commit (timing mode only).
    pub commit_ns: u64,
    /// Always-on retry-layer observability counters (see [`RetryMetrics`]).
    pub retry: RetryMetrics,
    /// Always-on memory-subsystem counters (arena allocation, retire and
    /// reclaim, epoch advances; see [`rhtm_mem::MemMetrics`]).  Updated by
    /// the structure wrappers' `rhtm_api::reclaim` pools, merged here and
    /// emitted in every bench JSON row as the `mem_metrics` object.
    pub mem: MemMetrics,
    /// Whether fine-grained timing is enabled for this thread.
    pub timing: bool,
}

impl TxStats {
    /// A fresh, zeroed stats object; `timing` selects the fine-grained
    /// breakdown mode.
    pub fn new(timing: bool) -> Self {
        TxStats {
            timing,
            ..Default::default()
        }
    }

    /// Total committed transactions across all paths.
    #[inline]
    pub fn commits(&self) -> u64 {
        self.commits_by_path.iter().sum()
    }

    /// Total aborted attempts across all causes.
    #[inline]
    pub fn aborts(&self) -> u64 {
        self.aborts_by_cause.iter().sum()
    }

    /// Total attempts (commits + aborts).
    #[inline]
    pub fn attempts(&self) -> u64 {
        self.commits() + self.aborts()
    }

    /// The paper's "Commit Counter" column: attempts divided by commits,
    /// i.e. how many times the average transaction had to run before it
    /// committed (1.0 = never aborted).
    pub fn commit_ratio(&self) -> f64 {
        let commits = self.commits();
        if commits == 0 {
            0.0
        } else {
            self.attempts() as f64 / commits as f64
        }
    }

    /// Fraction of attempts that aborted.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.aborts() as f64 / attempts as f64
        }
    }

    /// Records a commit on `path`.
    #[inline(always)]
    pub fn record_commit(&mut self, path: PathKind) {
        self.commits_by_path[path.index()] += 1;
    }

    /// Records an aborted attempt.
    #[inline(always)]
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts_by_cause[cause.index()] += 1;
    }

    /// Records a transactional read (and, in timing mode, its duration).
    #[inline(always)]
    pub fn record_read(&mut self, ns: u64) {
        self.reads += 1;
        self.read_ns += ns;
    }

    /// Records a transactional write (and, in timing mode, its duration).
    #[inline(always)]
    pub fn record_write(&mut self, ns: u64) {
        self.writes += 1;
        self.write_ns += ns;
    }

    /// Adds commit-phase time (timing mode only).
    #[inline(always)]
    pub fn record_commit_time(&mut self, ns: u64) {
        self.commit_ns += ns;
    }

    /// Merges another thread's statistics into this one.
    pub fn merge(&mut self, other: &TxStats) {
        for i in 0..self.commits_by_path.len() {
            self.commits_by_path[i] += other.commits_by_path[i];
        }
        for i in 0..self.aborts_by_cause.len() {
            self.aborts_by_cause[i] += other.aborts_by_cause[i];
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.htm_commits += other.htm_commits;
        self.htm_aborts += other.htm_aborts;
        self.read_ns += other.read_ns;
        self.write_ns += other.write_ns;
        self.commit_ns += other.commit_ns;
        self.retry.merge(&other.retry);
        self.mem.merge(&other.mem);
        self.timing |= other.timing;
    }

    /// Resets every counter, preserving the timing flag.
    pub fn reset(&mut self) {
        let timing = self.timing;
        *self = TxStats::new(timing);
    }

    /// Aborts recorded for one specific cause.
    pub fn aborts_for(&self, cause: AbortCause) -> u64 {
        self.aborts_by_cause[cause.index()]
    }

    /// Commits recorded on one specific path.
    pub fn commits_on(&self, path: PathKind) -> u64 {
        self.commits_by_path[path.index()]
    }

    /// Time spent in reads, as a `Duration` (timing mode only).
    pub fn read_time(&self) -> Duration {
        Duration::from_nanos(self.read_ns)
    }

    /// Time spent in writes, as a `Duration` (timing mode only).
    pub fn write_time(&self) -> Duration {
        Duration::from_nanos(self.write_ns)
    }

    /// Time spent in commit, as a `Duration` (timing mode only).
    pub fn commit_time(&self) -> Duration {
        Duration::from_nanos(self.commit_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_indices_are_dense() {
        let mut seen = [false; 3];
        for p in PathKind::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn commit_and_abort_counters() {
        let mut s = TxStats::new(false);
        s.record_commit(PathKind::HardwareFast);
        s.record_commit(PathKind::HardwareFast);
        s.record_commit(PathKind::MixedSlow);
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Capacity);
        assert_eq!(s.commits(), 3);
        assert_eq!(s.aborts(), 2);
        assert_eq!(s.attempts(), 5);
        assert_eq!(s.commits_on(PathKind::HardwareFast), 2);
        assert_eq!(s.commits_on(PathKind::Software), 0);
        assert_eq!(s.aborts_for(AbortCause::Conflict), 1);
        assert!((s.commit_ratio() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.abort_ratio() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_when_empty() {
        let s = TxStats::new(false);
        assert_eq!(s.commit_ratio(), 0.0);
        assert_eq!(s.abort_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = TxStats::new(false);
        a.record_read(10);
        a.record_write(5);
        a.record_commit(PathKind::Software);
        a.htm_commits = 2;
        let mut b = TxStats::new(true);
        b.record_read(7);
        b.record_abort(AbortCause::Validation);
        b.record_commit_time(100);
        b.htm_aborts = 3;
        a.merge(&b);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 1);
        assert_eq!(a.read_ns, 17);
        assert_eq!(a.commit_ns, 100);
        assert_eq!(a.htm_commits, 2);
        assert_eq!(a.htm_aborts, 3);
        assert_eq!(a.commits(), 1);
        assert_eq!(a.aborts(), 1);
        assert!(a.timing, "timing flag is sticky under merge");
    }

    #[test]
    fn retry_metrics_merge_adds_every_counter() {
        let mut a = RetryMetrics {
            retry_here: 3,
            ..Default::default()
        };
        a.record_cause(AbortCause::Conflict);
        let mut b = RetryMetrics {
            retry_here: 1,
            demote: 2,
            backoff: 4,
            circuit_opens: 5,
            circuit_probes: 6,
            circuit_closes: 7,
            budget_exhausted: 8,
            ..Default::default()
        };
        b.record_cause(AbortCause::Conflict);
        b.record_cause(AbortCause::Capacity);
        a.merge(&b);
        assert_eq!(a.retry_here, 4);
        assert_eq!(a.demote, 2);
        assert_eq!(a.backoff, 4);
        assert_eq!(a.decisions(), 10);
        assert_eq!(a.cause_count(AbortCause::Conflict), 2);
        assert_eq!(a.cause_count(AbortCause::Capacity), 1);
        assert_eq!(a.circuit_opens, 5);
        assert_eq!(a.circuit_probes, 6);
        assert_eq!(a.circuit_closes, 7);
        assert_eq!(a.budget_exhausted, 8);

        // And TxStats::merge carries the nested metrics along.
        let mut sa = TxStats::new(false);
        sa.retry.retry_here = 1;
        let mut sb = TxStats::new(false);
        sb.retry.budget_exhausted = 9;
        sa.merge(&sb);
        assert_eq!(sa.retry.retry_here, 1);
        assert_eq!(sa.retry.budget_exhausted, 9);
    }

    #[test]
    fn reset_preserves_timing_flag() {
        let mut s = TxStats::new(true);
        s.record_read(10);
        s.reset();
        assert_eq!(s.reads, 0);
        assert!(s.timing);
    }

    #[test]
    fn stopwatch_zero_when_disabled() {
        let sw = Stopwatch::start(false);
        assert_eq!(sw.stop(), 0);
        let sw = Stopwatch::start(true);
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.stop() > 0);
    }

    #[test]
    fn path_probe_reports_the_dominant_path() {
        let mut s = TxStats::new(false);
        s.record_commit(PathKind::HardwareFast);
        let probe = PathProbe::start(&s);
        assert_eq!(probe.finish(&s), None, "no commit in between");
        let probe = PathProbe::start(&s);
        s.record_commit(PathKind::MixedSlow);
        assert_eq!(probe.finish(&s), Some(PathKind::MixedSlow));
        let probe = PathProbe::start(&s);
        s.record_commit(PathKind::Software);
        s.record_commit(PathKind::Software);
        s.record_commit(PathKind::HardwareFast);
        assert_eq!(
            probe.finish(&s),
            Some(PathKind::Software),
            "dominant path wins when several committed"
        );
    }

    #[test]
    fn durations_convert_from_nanos() {
        let mut s = TxStats::new(true);
        s.record_read(1_000);
        s.record_write(2_000);
        s.record_commit_time(3_000);
        assert_eq!(s.read_time(), Duration::from_nanos(1_000));
        assert_eq!(s.write_time(), Duration::from_nanos(2_000));
        assert_eq!(s.commit_time(), Duration::from_nanos(3_000));
    }
}
