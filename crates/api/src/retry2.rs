//! Retry 2.0: production-shaped contention management on top of the
//! [`RetryPolicy`] axis — a per-thread **circuit breaker**, a shared
//! **retry budget** (token bucket), and two further jittered backoff
//! shapes (**full-jitter** and **fibonacci**).
//!
//! The PR-2 policies decide from the *current attempt* only; under the
//! phase-shifting loads of PR 6 (diurnal ramps, flash crowds, hot-spot
//! migration) that is exactly wrong — a fixed retry counter keeps paying
//! the full hardware-retry budget on every transaction of a contention
//! storm it has already lost.  The two stateful policies here carry cheap
//! cross-transaction memory instead:
//!
//! * [`CircuitBreaker`] watches consecutive hardware-path failures.  After
//!   `open_threshold` of them the circuit **opens**: decisions go straight
//!   to [`RetryDecision::Demote`], skipping the doomed hardware retries
//!   entirely.  After `probe_interval` demoted decisions the circuit turns
//!   **half-open** and re-admits a single probe attempt onto the hardware
//!   path; `close_streak` consecutive hardware commits close the circuit
//!   again, while a probe failure re-opens it.  State is **per thread, per
//!   policy instance** — contention is a property of what *this* thread
//!   keeps colliding with.
//! * [`Budgeted`] shares one [`RetryBudget`] token bucket across all
//!   threads of a run: every retry (any non-demote decision) drains a
//!   token, every commit refills `refill_per_commit` of them.  When a
//!   contention storm drives the retry rate past what commits pay for, the
//!   bucket empties and retries are shed into demotions instead of
//!   amplifying the storm.  Exhaustion can never strand a transaction: the
//!   universal [`AttemptContext::clamp`] turns `Demote` back into
//!   `RetryHere` on bottom-tier paths, so a solo TL2 thread just keeps
//!   retrying (see `tests/retry2_state_machine.rs`).
//!
//! Both wrappers compose over any inner policy (`cb` and `budgeted` parse
//! as spec-label slugs wrapping [`PaperDefault`]) and both record their
//! state transitions into the thread's [`RetryMetrics`], which every
//! runtime snapshots into [`crate::stats::TxStats`] and the benchmark JSON.
//!
//! The jitter policies ([`FullJitter`], [`FibonacciBackoff`]) follow the
//! [`RetryRng`] *seeding contract*: each instance draws its spin windows
//! from [`RetryRng::fork`] with a unique per-instance salt, so two
//! instances sharing a thread never pace their retries in lockstep.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::retry::{
    AttemptContext, PaperDefault, PathClass, RetryDecision, RetryPolicy, RetryPolicyHandle,
    RetryRng,
};
use crate::stats::RetryMetrics;

/// Allocator for per-policy-instance identities.
///
/// The id keys the per-thread breaker state and salts the forked jitter
/// streams.  It is deliberately **excluded** from every fingerprint, so two
/// separately parsed handles of the same configuration still compare equal.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn next_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Tuning knobs of the [`CircuitBreaker`] state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitBreakerConfig {
    /// Consecutive hardware-path failures (capacity, conflict, any abort
    /// decided on [`PathClass::Hardware`]) that open the circuit.
    /// `u32::MAX` never opens — the breaker then delegates every decision,
    /// byte-identically to its inner policy.
    pub open_threshold: u32,
    /// Hardware-path decisions spent demoting while open before a
    /// half-open probe is admitted.
    pub probe_interval: u32,
    /// Consecutive hardware commits in the half-open state that close the
    /// circuit.
    pub close_streak: u32,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig {
            open_threshold: 4,
            probe_interval: 8,
            close_streak: 2,
        }
    }
}

/// The breaker's per-thread state (see [`CircuitState::label`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CircuitState {
    /// Hardware admission is normal; counts consecutive failures.
    Closed { failures: u32 },
    /// Hardware admission is cut; counts decisions until the next probe.
    Open { since: u32 },
    /// One probe is in flight; counts consecutive hardware commits.
    HalfOpen { streak: u32 },
}

impl CircuitState {
    fn label(self) -> &'static str {
        match self {
            CircuitState::Closed { .. } => "closed",
            CircuitState::Open { .. } => "open",
            CircuitState::HalfOpen { .. } => "half-open",
        }
    }
}

thread_local! {
    /// Breaker states of all [`CircuitBreaker`] instances this thread has
    /// touched, keyed by instance id.  Thread-local by design (see the
    /// module docs); runtime worker threads are born per run, so state
    /// never leaks between benchmark runs.
    static CIRCUITS: RefCell<HashMap<u64, CircuitState>> = RefCell::new(HashMap::new());
}

/// A per-thread circuit breaker over hardware-path admission (spec-label
/// slug `cb`; see the module docs for the state machine).
///
/// Decisions on non-hardware paths ([`PathClass::CommitHtm`],
/// [`PathClass::Software`]) and on paths with no slower tier are delegated
/// to the inner policy untouched — the breaker only governs whether the
/// *demotable hardware fast path* is worth retrying.
pub struct CircuitBreaker {
    inner: Arc<dyn RetryPolicy>,
    config: CircuitBreakerConfig,
    instance: u64,
}

impl CircuitBreaker {
    /// Wraps `inner` with breaker `config`.
    pub fn new(inner: &RetryPolicyHandle, config: CircuitBreakerConfig) -> Self {
        CircuitBreaker {
            inner: inner.shared(),
            config,
            instance: next_instance(),
        }
    }

    /// The `cb` slug: default breaker configuration over [`PaperDefault`].
    pub fn paper_default() -> Self {
        Self::new(
            &RetryPolicyHandle::paper_default(),
            CircuitBreakerConfig::default(),
        )
    }

    /// The breaker configuration.
    pub fn config(&self) -> CircuitBreakerConfig {
        self.config
    }

    /// The calling thread's current breaker state, as a label
    /// (`closed` / `open` / `half-open`) — for tests and debugging.
    pub fn state_label(&self) -> &'static str {
        self.load().label()
    }

    /// Resets the calling thread's breaker state to closed (tests).
    pub fn reset_thread_state(&self) {
        self.store(CircuitState::Closed { failures: 0 });
    }

    fn load(&self) -> CircuitState {
        CIRCUITS.with(|m| {
            *m.borrow_mut()
                .entry(self.instance)
                .or_insert(CircuitState::Closed { failures: 0 })
        })
    }

    fn store(&self, state: CircuitState) {
        CIRCUITS.with(|m| {
            m.borrow_mut().insert(self.instance, state);
        });
    }
}

impl fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("inner", &self.inner)
            .field("config", &self.config)
            .finish()
    }
}

impl RetryPolicy for CircuitBreaker {
    fn label(&self) -> &'static str {
        "cb"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        self.decide_observed(ctx, rng, &mut RetryMetrics::default())
    }

    fn decide_observed(
        &self,
        ctx: &AttemptContext,
        rng: &mut RetryRng,
        metrics: &mut RetryMetrics,
    ) -> RetryDecision {
        // The breaker governs demotable hardware admission only.
        if ctx.path != PathClass::Hardware || !ctx.can_demote {
            return self.inner.decide_observed(ctx, rng, metrics);
        }
        match self.load() {
            CircuitState::Closed { failures } => {
                let failures = failures.saturating_add(1);
                if failures >= self.config.open_threshold {
                    self.store(CircuitState::Open { since: 0 });
                    metrics.circuit_opens += 1;
                    RetryDecision::Demote
                } else {
                    self.store(CircuitState::Closed { failures });
                    self.inner.decide_observed(ctx, rng, metrics)
                }
            }
            CircuitState::Open { since } => {
                let since = since.saturating_add(1);
                if since >= self.config.probe_interval {
                    // Re-admit one probe attempt onto the hardware path.
                    self.store(CircuitState::HalfOpen { streak: 0 });
                    metrics.circuit_probes += 1;
                    self.inner.decide_observed(ctx, rng, metrics)
                } else {
                    self.store(CircuitState::Open { since });
                    RetryDecision::Demote
                }
            }
            CircuitState::HalfOpen { .. } => {
                // The probe aborted before building its close streak.
                self.store(CircuitState::Open { since: 0 });
                metrics.circuit_opens += 1;
                RetryDecision::Demote
            }
        }
    }

    fn wants_commit_hook(&self) -> bool {
        true
    }

    fn on_commit(&self, hardware: bool, metrics: &mut RetryMetrics) {
        self.inner.on_commit(hardware, metrics);
        if !hardware {
            return;
        }
        match self.load() {
            CircuitState::Closed { failures } => {
                if failures != 0 {
                    self.store(CircuitState::Closed { failures: 0 });
                }
            }
            CircuitState::Open { .. } => {}
            CircuitState::HalfOpen { streak } => {
                let streak = streak.saturating_add(1);
                if streak >= self.config.close_streak {
                    self.store(CircuitState::Closed { failures: 0 });
                    metrics.circuit_closes += 1;
                } else {
                    self.store(CircuitState::HalfOpen { streak });
                }
            }
        }
    }

    fn wants_fallback_snapshot(&self) -> bool {
        self.inner.wants_fallback_snapshot()
    }

    fn fingerprint(&self) -> String {
        // Excludes the instance id: equality is configuration identity.
        format!(
            "cb[open={},probe={},close={}]:{}",
            self.config.open_threshold,
            self.config.probe_interval,
            self.config.close_streak,
            self.inner.fingerprint()
        )
    }
}

// ---------------------------------------------------------------------
// Retry budget (token bucket)
// ---------------------------------------------------------------------

/// A token bucket shared by every thread of a run: retries drain it,
/// commits refill it (see [`Budgeted`]).
#[derive(Debug)]
pub struct RetryBudget {
    tokens: AtomicU64,
    capacity: u64,
    refill_per_commit: u64,
}

impl RetryBudget {
    /// A bucket starting full at `capacity`, refilled by
    /// `refill_per_commit` tokens per committed transaction.
    pub fn new(capacity: u64, refill_per_commit: u64) -> Self {
        RetryBudget {
            tokens: AtomicU64::new(capacity),
            capacity,
            refill_per_commit,
        }
    }

    /// The bucket's capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Tokens refilled per committed transaction.
    pub fn refill_per_commit(&self) -> u64 {
        self.refill_per_commit
    }

    /// Current token count (racy snapshot; exact in single-thread tests).
    pub fn tokens(&self) -> u64 {
        self.tokens.load(Ordering::Relaxed)
    }

    /// Takes one token; `false` when the bucket is empty.
    pub fn try_drain(&self) -> bool {
        self.tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1))
            .is_ok()
    }

    /// Adds the per-commit refill, saturating at capacity.
    pub fn refill(&self) {
        let _ = self
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some((t + self.refill_per_commit).min(self.capacity))
            });
    }
}

/// Wraps an inner policy with a shared [`RetryBudget`] (spec-label slug
/// `budgeted`): any retry the inner policy grants must also be paid for
/// from the bucket, and an empty bucket sheds the retry into a demotion
/// (recorded as [`RetryMetrics::budget_exhausted`]).
pub struct Budgeted {
    inner: Arc<dyn RetryPolicy>,
    budget: Arc<RetryBudget>,
}

impl Budgeted {
    /// Wraps `inner` with `budget`.
    pub fn new(inner: &RetryPolicyHandle, budget: RetryBudget) -> Self {
        Budgeted {
            inner: inner.shared(),
            budget: Arc::new(budget),
        }
    }

    /// The `budgeted` slug: a 256-token bucket refilling 2 tokens per
    /// commit, over [`PaperDefault`].  Steady-state loads (a retry or two
    /// per commit) never exhaust it; a storm retrying far faster than it
    /// commits does, and sheds.
    pub fn paper_default() -> Self {
        Self::new(
            &RetryPolicyHandle::paper_default(),
            RetryBudget::new(256, 2),
        )
    }

    /// The shared bucket (tests observe drain/refill arithmetic).
    pub fn budget(&self) -> &RetryBudget {
        &self.budget
    }
}

impl fmt::Debug for Budgeted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budgeted")
            .field("inner", &self.inner)
            .field("capacity", &self.budget.capacity)
            .field("refill_per_commit", &self.budget.refill_per_commit)
            .finish()
    }
}

impl RetryPolicy for Budgeted {
    fn label(&self) -> &'static str {
        "budgeted"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        self.decide_observed(ctx, rng, &mut RetryMetrics::default())
    }

    fn decide_observed(
        &self,
        ctx: &AttemptContext,
        rng: &mut RetryRng,
        metrics: &mut RetryMetrics,
    ) -> RetryDecision {
        match self.inner.decide_observed(ctx, rng, metrics) {
            RetryDecision::Demote => RetryDecision::Demote,
            retry => {
                if self.budget.try_drain() {
                    retry
                } else {
                    metrics.budget_exhausted += 1;
                    // On bottom-tier paths the clamp turns this back into
                    // RetryHere, so exhaustion can never deadlock a thread
                    // that has nowhere to demote to.
                    RetryDecision::Demote
                }
            }
        }
    }

    fn wants_commit_hook(&self) -> bool {
        true
    }

    fn on_commit(&self, hardware: bool, metrics: &mut RetryMetrics) {
        self.inner.on_commit(hardware, metrics);
        self.budget.refill();
    }

    fn wants_fallback_snapshot(&self) -> bool {
        self.inner.wants_fallback_snapshot()
    }

    fn fingerprint(&self) -> String {
        // Excludes the bucket's current fill: configuration identity only.
        format!(
            "budgeted[cap={},refill={}]:{}",
            self.budget.capacity,
            self.budget.refill_per_commit,
            self.inner.fingerprint()
        )
    }
}

// ---------------------------------------------------------------------
// Jittered backoff variants
// ---------------------------------------------------------------------

/// [`PaperDefault`]'s demotion rules with *full-jitter* backoff: each retry
/// spins uniformly in `[0, window]` where the window doubles per attempt up
/// to a cap (the AWS "full jitter" shape — maximum spread, best collision
/// avoidance at the cost of occasional zero waits).
#[derive(Clone, Copy)]
pub struct FullJitter {
    /// Backoff window of the first retry.
    pub base_spins: u32,
    /// Upper bound on the window.
    pub max_spins: u32,
    salt: u64,
}

impl FullJitter {
    /// A full-jitter policy with the given window bounds.
    pub fn new(base_spins: u32, max_spins: u32) -> Self {
        FullJitter {
            base_spins,
            max_spins,
            salt: next_instance(),
        }
    }
}

impl Default for FullJitter {
    fn default() -> Self {
        Self::new(32, 16_384)
    }
}

impl fmt::Debug for FullJitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FullJitter")
            .field("base_spins", &self.base_spins)
            .field("max_spins", &self.max_spins)
            .finish()
    }
}

impl RetryPolicy for FullJitter {
    fn label(&self) -> &'static str {
        "full-jitter"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        match PaperDefault.decide(ctx, rng) {
            RetryDecision::Demote => RetryDecision::Demote,
            _ => {
                let window = self
                    .base_spins
                    .saturating_mul(1u32 << ctx.attempt.saturating_sub(1).min(16))
                    .clamp(1, self.max_spins);
                let spins = rng.fork(self.salt).next_below(u64::from(window) + 1) as u32;
                RetryDecision::BackoffThen(spins)
            }
        }
    }

    fn fingerprint(&self) -> String {
        format!(
            "full-jitter[base={},max={}]",
            self.base_spins, self.max_spins
        )
    }
}

/// [`PaperDefault`]'s demotion rules with fibonacci backoff: the window
/// grows along the fibonacci sequence (`base·fib(attempt)`, capped) —
/// gentler early escalation than doubling — jittered over
/// `[window/2, window]`.
#[derive(Clone, Copy)]
pub struct FibonacciBackoff {
    /// Backoff window of the first retry (`fib(1) == 1`).
    pub base_spins: u32,
    /// Upper bound on the window.
    pub max_spins: u32,
    salt: u64,
}

impl FibonacciBackoff {
    /// A fibonacci-backoff policy with the given window bounds.
    pub fn new(base_spins: u32, max_spins: u32) -> Self {
        FibonacciBackoff {
            base_spins,
            max_spins,
            salt: next_instance(),
        }
    }

    /// `fib(n)` saturating in `u32` (`fib(1) == fib(2) == 1`).
    fn fib(n: u32) -> u32 {
        let (mut a, mut b) = (1u32, 1u32);
        for _ in 2..n.min(64) {
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        if n == 0 {
            1
        } else {
            b
        }
    }
}

impl Default for FibonacciBackoff {
    fn default() -> Self {
        Self::new(32, 16_384)
    }
}

impl fmt::Debug for FibonacciBackoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FibonacciBackoff")
            .field("base_spins", &self.base_spins)
            .field("max_spins", &self.max_spins)
            .finish()
    }
}

impl RetryPolicy for FibonacciBackoff {
    fn label(&self) -> &'static str {
        "fib"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        match PaperDefault.decide(ctx, rng) {
            RetryDecision::Demote => RetryDecision::Demote,
            _ => {
                let window = self
                    .base_spins
                    .saturating_mul(Self::fib(ctx.attempt))
                    .clamp(1, self.max_spins);
                let spins =
                    window / 2 + rng.fork(self.salt).next_below(u64::from(window / 2) + 1) as u32;
                RetryDecision::BackoffThen(spins)
            }
        }
    }

    fn fingerprint(&self) -> String {
        format!("fib[base={},max={}]", self.base_spins, self.max_spins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::AbortCause;

    fn hw_ctx(attempt: u32) -> AttemptContext {
        AttemptContext {
            attempt,
            path: PathClass::Hardware,
            cause: AbortCause::Conflict,
            can_demote: true,
            retry_budget: u32::MAX,
            mix_percent: 100,
            fallback_rh2: 0,
            fallback_all_software: 0,
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_back() {
        let cb = CircuitBreaker::new(
            &RetryPolicyHandle::aggressive(),
            CircuitBreakerConfig {
                open_threshold: 3,
                probe_interval: 2,
                close_streak: 1,
            },
        );
        let mut rng = RetryRng::new(5);
        let mut m = RetryMetrics::default();
        let ctx = hw_ctx(1);
        assert_eq!(
            cb.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        assert_eq!(
            cb.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        assert_eq!(cb.state_label(), "closed");
        // Third consecutive failure opens.
        assert_eq!(
            cb.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::Demote
        );
        assert_eq!(cb.state_label(), "open");
        assert_eq!(m.circuit_opens, 1);
        // One more demote, then the probe interval elapses.
        assert_eq!(
            cb.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::Demote
        );
        assert_eq!(
            cb.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        assert_eq!(cb.state_label(), "half-open");
        assert_eq!(m.circuit_probes, 1);
        // The probe commits in hardware: close.
        cb.on_commit(true, &mut m);
        assert_eq!(cb.state_label(), "closed");
        assert_eq!(m.circuit_closes, 1);
    }

    #[test]
    fn breaker_commit_resets_the_closed_failure_count() {
        let cb = CircuitBreaker::new(
            &RetryPolicyHandle::aggressive(),
            CircuitBreakerConfig {
                open_threshold: 2,
                probe_interval: 1,
                close_streak: 1,
            },
        );
        let mut rng = RetryRng::new(5);
        let mut m = RetryMetrics::default();
        let ctx = hw_ctx(1);
        cb.decide_observed(&ctx, &mut rng, &mut m);
        cb.on_commit(true, &mut m); // resets failures
        cb.decide_observed(&ctx, &mut rng, &mut m);
        assert_eq!(cb.state_label(), "closed", "streak was broken by a commit");
        cb.decide_observed(&ctx, &mut rng, &mut m);
        assert_eq!(cb.state_label(), "open");
    }

    #[test]
    fn breaker_ignores_non_hardware_decisions() {
        let cb = CircuitBreaker::new(
            &RetryPolicyHandle::aggressive(),
            CircuitBreakerConfig {
                open_threshold: 1,
                probe_interval: 1,
                close_streak: 1,
            },
        );
        let mut rng = RetryRng::new(5);
        let mut m = RetryMetrics::default();
        let sw = AttemptContext {
            path: PathClass::Software,
            can_demote: false,
            ..hw_ctx(1)
        };
        for _ in 0..10 {
            assert_eq!(
                cb.decide_observed(&sw, &mut rng, &mut m),
                RetryDecision::RetryHere
            );
        }
        assert_eq!(cb.state_label(), "closed");
        assert_eq!(m.circuit_opens, 0);
    }

    #[test]
    fn budget_drains_refills_and_sheds() {
        let b = Budgeted::new(&RetryPolicyHandle::aggressive(), RetryBudget::new(2, 3));
        let mut rng = RetryRng::new(5);
        let mut m = RetryMetrics::default();
        let ctx = hw_ctx(1);
        assert_eq!(
            b.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        assert_eq!(
            b.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        assert_eq!(b.budget().tokens(), 0);
        assert_eq!(
            b.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::Demote
        );
        assert_eq!(m.budget_exhausted, 1);
        // A commit refills (saturating at capacity).
        b.on_commit(false, &mut m);
        assert_eq!(b.budget().tokens(), 2, "refill saturates at capacity");
        assert_eq!(
            b.decide_observed(&ctx, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
    }

    #[test]
    fn infinite_threshold_breaker_delegates_forever() {
        let inner = RetryPolicyHandle::paper_default();
        let cb = CircuitBreaker::new(
            &inner,
            CircuitBreakerConfig {
                open_threshold: u32::MAX,
                ..CircuitBreakerConfig::default()
            },
        );
        let mut rng_a = RetryRng::new(77);
        let mut rng_b = RetryRng::new(77);
        let mut ma = RetryMetrics::default();
        for attempt in 1..=200u32 {
            let ctx = AttemptContext {
                mix_percent: 50,
                retry_budget: 2,
                ..hw_ctx(attempt % 7 + 1)
            };
            assert_eq!(
                cb.decide_observed(&ctx, &mut rng_a, &mut ma),
                inner.decide(&ctx, &mut rng_b),
                "attempt {attempt}"
            );
        }
        assert_eq!(cb.state_label(), "closed");
        assert_eq!(
            (ma.circuit_opens, ma.circuit_probes, ma.circuit_closes),
            (0, 0, 0)
        );
    }

    #[test]
    fn jitter_policies_stay_in_window_and_decorrelate_instances() {
        let a = FullJitter::default();
        let b = FullJitter::default();
        let mut rng_a = RetryRng::new(9);
        let mut rng_b = RetryRng::new(9);
        let mut spins_a = Vec::new();
        let mut spins_b = Vec::new();
        for attempt in 1..=24 {
            let ctx = hw_ctx(attempt);
            match (a.decide(&ctx, &mut rng_a), b.decide(&ctx, &mut rng_b)) {
                (RetryDecision::BackoffThen(x), RetryDecision::BackoffThen(y)) => {
                    assert!(x <= a.max_spins && y <= b.max_spins);
                    spins_a.push(x);
                    spins_b.push(y);
                }
                other => panic!("expected backoffs, got {other:?}"),
            }
        }
        assert_ne!(
            spins_a, spins_b,
            "two instances on identical thread streams must not correlate"
        );

        let f = FibonacciBackoff::default();
        let mut rng = RetryRng::new(3);
        let mut windows = Vec::new();
        for attempt in 1..=20 {
            match f.decide(&hw_ctx(attempt), &mut rng) {
                RetryDecision::BackoffThen(s) => {
                    assert!(s <= f.max_spins, "attempt {attempt}: {s}");
                    windows.push(s);
                }
                other => panic!("expected backoff, got {other:?}"),
            }
        }
        assert!(
            windows.iter().max().unwrap() > &f.base_spins,
            "fib escalates"
        );
        // The fibonacci sequence itself.
        assert_eq!(
            (1..=10).map(FibonacciBackoff::fib).collect::<Vec<_>>(),
            vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55]
        );
        assert_eq!(FibonacciBackoff::fib(0), 1);
        assert_eq!(
            FibonacciBackoff::fib(64),
            FibonacciBackoff::fib(1000),
            "saturated"
        );
    }

    #[test]
    fn retry2_fingerprints_are_configuration_identity() {
        // Fresh instances of the same configuration compare equal...
        assert_eq!(
            RetryPolicyHandle::circuit_breaker(),
            RetryPolicyHandle::circuit_breaker()
        );
        assert_eq!(RetryPolicyHandle::budgeted(), RetryPolicyHandle::budgeted());
        assert_eq!(
            RetryPolicyHandle::full_jitter(),
            RetryPolicyHandle::full_jitter()
        );
        assert_eq!(
            RetryPolicyHandle::fibonacci(),
            RetryPolicyHandle::fibonacci()
        );
        // ...different configurations do not.
        assert_ne!(
            RetryPolicyHandle::new(CircuitBreaker::new(
                &RetryPolicyHandle::paper_default(),
                CircuitBreakerConfig {
                    open_threshold: 9,
                    ..CircuitBreakerConfig::default()
                },
            )),
            RetryPolicyHandle::circuit_breaker()
        );
        assert_ne!(
            RetryPolicyHandle::new(Budgeted::new(
                &RetryPolicyHandle::paper_default(),
                RetryBudget::new(1, 1),
            )),
            RetryPolicyHandle::budgeted()
        );
    }
}
