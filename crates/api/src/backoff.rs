//! Exponential backoff for contended retry loops.
//!
//! A dependency-free replacement for `crossbeam::utils::Backoff` with the
//! same shape: repeated [`Backoff::snooze`] calls first spin with
//! exponentially more `spin_loop` hints, then start yielding the thread to
//! the OS scheduler.  Every retry loop in the workspace (hardware retry,
//! TL2 retry, the RH cascade) funnels through this type, so contention
//! behaviour is uniform across runtimes.

/// Exponential backoff state for one retry loop.
///
/// ```
/// use rhtm_api::Backoff;
///
/// let backoff = Backoff::new();
/// for _attempt in 0..3 {
///     // ... try the contended operation ...
///     backoff.snooze();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

/// Beyond this step, `snooze` yields to the scheduler instead of spinning.
const SPIN_LIMIT: u32 = 6;
/// Growth cap so the spin count stays bounded.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a fresh backoff (first snooze is the cheapest).
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Resets the backoff to its initial state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off once: busy-spins `2^step` times while the step is small,
    /// then yields the thread.  Each call escalates up to a cap.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step < YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Busy-spins without ever yielding (for very short critical windows).
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        if self.step.get() < SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_escalates_and_caps() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        assert_eq!(b.step.get(), YIELD_LIMIT);
        b.reset();
        assert_eq!(b.step.get(), 0);
    }

    #[test]
    fn spin_never_exceeds_spin_limit() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.spin();
        }
        assert_eq!(b.step.get(), SPIN_LIMIT);
    }
}
