//! A mergeable HDR-style latency histogram for open-loop load generation.
//!
//! Closed-loop benchmarking reports throughput means; a service judged on
//! tail latency needs the full distribution, recorded cheaply on the
//! request path and merged across worker threads afterwards — the same
//! per-thread-then-merge shape as [`TxStats`](crate::TxStats).
//!
//! The histogram is **log-bucketed with linear sub-buckets** (the HdrHistogram
//! layout): values below [`SUB_BUCKETS`] are recorded exactly; above that,
//! each power-of-two range is split into [`SUB_BUCKETS`] equal sub-buckets,
//! so the relative quantization error is bounded by `1/SUB_BUCKETS`
//! (~3.1%) at every magnitude while the whole table stays a flat array of
//! `u64` counters — constant-time record, alloc-free after construction.
//!
//! Quantile queries return the **upper bound** of the bucket holding the
//! requested rank, so a reported quantile never understates the true
//! sample quantile and overstates it by at most the bucket width (the
//! property the fuzz tests pin down).

/// Linear sub-buckets per power-of-two range (32 → ≤3.1% relative error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// `log2(SUB_BUCKETS)`.
const SUB_BITS: u32 = 5;

/// Power-of-two groups needed to cover the full `u64` range: group 0 is
/// the exact range `[0, SUB_BUCKETS)`, group `g ≥ 1` covers
/// `[SUB_BUCKETS << (g-1), SUB_BUCKETS << g)`.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;

/// Total counter slots.
const BUCKETS: usize = GROUPS * SUB_BUCKETS as usize;

/// A log-bucketed latency histogram (values are nanoseconds by
/// convention, but any `u64` magnitude works).
///
/// Per-thread instances are recorded into without synchronisation and
/// [merged](LatencyHistogram::merge) afterwards; merging is element-wise
/// and therefore associative and commutative, so any merge tree gives the
/// same result.
///
/// ```
/// use rhtm_api::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [100, 200, 300, 400, 500] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.value_at_quantile(0.5);
/// assert!((300..=310).contains(&p50)); // ≤ 1/32 above the true median
/// ```
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// The flat bucket index of `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as u64;
            let group = msb - SUB_BITS as u64 + 1;
            let sub = (value >> (group - 1)) - SUB_BUCKETS;
            (group * SUB_BUCKETS + sub) as usize
        }
    }

    /// The inclusive `[low, high]` value range of bucket `index` — every
    /// value in the range maps back to `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        let group = index as u64 / SUB_BUCKETS;
        let sub = index as u64 % SUB_BUCKETS;
        if group == 0 {
            (sub, sub)
        } else {
            let width = 1u64 << (group - 1);
            let low = (SUB_BUCKETS + sub) << (group - 1);
            (low, low + (width - 1))
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Observations recorded so far (including via merges).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded value, exact (not bucket-quantized); 0 when
    /// empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self` (element-wise counter addition:
    /// associative and commutative, so worker histograms can be merged in
    /// any order or tree shape).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the bucket containing the rank-`⌈q·count⌉` observation, so the
    /// result is `≥` the true sample quantile and exceeds it by less than
    /// the bucket width (relative error `≤ 1/`[`SUB_BUCKETS`]).  Returns 0
    /// for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, high) = Self::bucket_bounds(i);
                // The true maximum is exact, so never report past it.
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the p50/p90/p99/p99.9 tail summary the benchmark
    /// reports emit.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
            max: self.max,
        }
    }
}

/// The fixed percentile set reported by the benchmark JSON (see
/// `docs/BENCHMARKS.md`, "bench_kv").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Observations behind the summary.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A self-contained splitmix64 (the workspace RNG contract) so the
    /// fuzz tests below are deterministic without a dev-dependency.
    struct SplitMix(u64);
    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_boundary_goldens() {
        // Group 0: exact singleton buckets.
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(31), 31);
        assert_eq!(LatencyHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LatencyHistogram::bucket_bounds(31), (31, 31));
        // First log group: width 1 still (values 32..64).
        assert_eq!(LatencyHistogram::bucket_index(32), 32);
        assert_eq!(LatencyHistogram::bucket_index(63), 63);
        assert_eq!(LatencyHistogram::bucket_bounds(32), (32, 32));
        // Second group: width 2 (values 64..128).
        assert_eq!(LatencyHistogram::bucket_index(64), 64);
        assert_eq!(LatencyHistogram::bucket_index(65), 64);
        assert_eq!(LatencyHistogram::bucket_index(66), 65);
        assert_eq!(LatencyHistogram::bucket_bounds(64), (64, 65));
        // A mid-range golden: 1000 = 0b1111101000, msb 9, group 5,
        // sub = (1000 >> 4) - 32 = 30 → index 5*32 + 30 = 190.
        assert_eq!(LatencyHistogram::bucket_index(1000), 190);
        assert_eq!(LatencyHistogram::bucket_bounds(190), (992, 1007));
        // The extremes stay in range.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
        let (low, high) = LatencyHistogram::bucket_bounds(BUCKETS - 1);
        assert!(low < high && high == u64::MAX);
    }

    #[test]
    fn bounds_and_index_are_inverse_everywhere() {
        let mut rng = SplitMix(7);
        for _ in 0..20_000 {
            let v = rng.next() >> (rng.next() % 64);
            let i = LatencyHistogram::bucket_index(v);
            let (low, high) = LatencyHistogram::bucket_bounds(i);
            assert!(
                low <= v && v <= high,
                "value {v} outside its bucket {i} [{low}, {high}]"
            );
            assert_eq!(LatencyHistogram::bucket_index(low), i);
            assert_eq!(LatencyHistogram::bucket_index(high), i);
            // Relative bucket width is bounded by 1/SUB_BUCKETS.
            assert!(high - low <= low.max(1) / SUB_BUCKETS + 1);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = SplitMix(42);
        let parts: Vec<LatencyHistogram> = (0..4)
            .map(|_| {
                let mut h = LatencyHistogram::new();
                for _ in 0..500 {
                    h.record(rng.next() >> (rng.next() % 50));
                }
                h
            })
            .collect();
        // ((a+b)+c)+d
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left.merge(p);
        }
        // a+((b+c)+d), built right-to-left
        let mut right = parts[3].clone();
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        bc.merge(&right);
        right = parts[0].clone();
        right.merge(&bc);
        // d+c+b+a (reversed order)
        let mut rev = parts[3].clone();
        for p in parts[..3].iter().rev() {
            rev.merge(p);
        }
        for h in [&right, &rev] {
            assert_eq!(left.count(), h.count());
            assert_eq!(left.max(), h.max());
            assert_eq!(left.counts, h.counts);
            for q in [0.5, 0.9, 0.99, 0.999] {
                assert_eq!(left.value_at_quantile(q), h.value_at_quantile(q));
            }
        }
    }

    #[test]
    fn recorded_quantiles_bound_the_true_sample_quantiles() {
        for seed in 0..8u64 {
            let mut rng = SplitMix(seed);
            let n = 200 + (rng.next() % 4000) as usize;
            let mut h = LatencyHistogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix magnitudes: shift by a random amount so every group
                // gets traffic.
                let v = rng.next() >> (rng.next() % 60);
                samples.push(v);
                h.record(v);
            }
            samples.sort_unstable();
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let truth = samples[rank - 1];
                let reported = h.value_at_quantile(q);
                assert!(
                    reported >= truth,
                    "seed {seed} q {q}: reported {reported} < true {truth}"
                );
                // Upper bound: within one bucket width of the truth.
                let (low, high) =
                    LatencyHistogram::bucket_bounds(LatencyHistogram::bucket_index(truth));
                assert!(
                    reported <= high,
                    "seed {seed} q {q}: reported {reported} above bucket \
                     [{low}, {high}] of true {truth}"
                );
            }
            assert_eq!(h.value_at_quantile(1.0), *samples.last().unwrap());
        }
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.summary().p999, 0);
        let mut h = LatencyHistogram::new();
        h.record(777);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.value_at_quantile(q), 777.min(h.max()));
        }
        let s = h.summary();
        assert_eq!((s.count, s.max), (1, 777));
    }
}
