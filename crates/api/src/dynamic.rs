//! Dyn-erased runtime handles: hold any [`TmRuntime`] as a value.
//!
//! The generic traits keep the per-access hot path monomorphised, but
//! their shape — [`TmRuntime`]'s associated `Thread` type and
//! [`TmThread::execute`]'s generic closure — makes them non-object-safe,
//! so "give me the runtime for this [`AlgoKind`]" could not return a
//! value; every test, example and driver had to invert itself into a
//! visitor struct (`AlgoVisitor` continuation-passing style).  This module
//! adds the object-safe view:
//!
//! * [`Txn`] is already object-safe — `&mut dyn Txn` (aliased
//!   [`DynTxn`]) works directly, and the typed layer's
//!   [`TxCell`](crate::typed::TxCell) accessors accept it (`X: Txn +
//!   ?Sized`).
//! * [`DynThread`] — object-safe mirror of [`TmThread`], blanket-implemented
//!   for every `T: TmThread`.  Its [`execute_dyn`](DynThread::execute_dyn)
//!   takes a `&mut dyn FnMut(&mut DynTxn<'_>)` body; the
//!   [`DynThreadExt::run`] extension restores the ergonomic typed-return
//!   closure form.
//! * [`DynRuntime`] — object-safe mirror of [`TmRuntime`],
//!   blanket-implemented for every runtime; registration returns
//!   `Box<dyn DynThread>`.
//!
//! Erasure costs one indirect call per *transaction body invocation* and
//! per access — fine for tests, examples and setup code, wrong for the
//! measured benchmark loops, which stay on the generic path (the paper's
//! point is per-access instrumentation cost; virtual dispatch there would
//! drown it).
//!
//! [`AlgoKind`]: ../../rhtm_workloads/enum.AlgoKind.html
//!
//! # Example
//!
//! ```
//! use rhtm_api::dynamic::{DynRuntime, DynThreadExt};
//! use rhtm_api::test_runtime::DirectRuntime;
//!
//! // Held as a value: no visitor struct, no generic plumbing.
//! let rt: Box<dyn DynRuntime> = Box::new(DirectRuntime::new(64));
//! let cell = rt.mem().alloc(1);
//! let mut th = rt.register_dyn();
//! let v = th.run(|tx| {
//!     let v = tx.read(cell)?;
//!     tx.write(cell, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(v, 1);
//! assert_eq!(th.stats().commits(), 1);
//! ```

use std::sync::Arc;

use rhtm_mem::TmMemory;

use crate::abort::TxResult;
use crate::stats::TxStats;
use crate::traits::{TmRuntime, TmThread, Txn};

/// The object-safe transaction context: [`Txn`] needs no erasure shim, so
/// this is just the trait-object spelling of it.
pub type DynTxn<'a> = dyn Txn + 'a;

/// Object-safe mirror of [`TmThread`], blanket-implemented for every
/// thread handle, so `Box<dyn DynThread>` can be moved into workers
/// without naming the runtime's concrete thread type.
pub trait DynThread: Send {
    /// Runs `body` as a transaction, retrying until an attempt commits
    /// (the object-safe core of [`TmThread::execute`]).
    ///
    /// The closure returns `TxResult<()>`; a result value is captured by
    /// the closure itself — use [`DynThreadExt::run`] for the ergonomic
    /// typed-return form.
    fn execute_dyn(&mut self, body: &mut dyn FnMut(&mut DynTxn<'_>) -> TxResult<()>);

    /// This thread's dense id.
    fn thread_id(&self) -> usize;

    /// Read access to this thread's statistics.
    fn stats(&self) -> &TxStats;

    /// Mutable access to this thread's statistics.
    fn stats_mut(&mut self) -> &mut TxStats;
}

impl<T: TmThread> DynThread for T {
    fn execute_dyn(&mut self, body: &mut dyn FnMut(&mut DynTxn<'_>) -> TxResult<()>) {
        TmThread::execute(self, |tx| body(tx))
    }

    fn thread_id(&self) -> usize {
        TmThread::thread_id(self)
    }

    fn stats(&self) -> &TxStats {
        TmThread::stats(self)
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        TmThread::stats_mut(self)
    }
}

/// Ergonomic typed-return `execute` over any [`DynThread`] (including
/// `Box<dyn DynThread>`), mirroring [`TmThread::execute`].
pub trait DynThreadExt {
    /// Runs `body` transactionally and returns the committed attempt's
    /// result.
    fn run<R, F>(&mut self, body: F) -> R
    where
        F: FnMut(&mut DynTxn<'_>) -> TxResult<R>;
}

impl<T: DynThread + ?Sized> DynThreadExt for T {
    fn run<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut DynTxn<'_>) -> TxResult<R>,
    {
        let mut out = None;
        self.execute_dyn(&mut |tx| {
            out = Some(body(tx)?);
            Ok(())
        });
        out.expect("execute_dyn returned without a committed result")
    }
}

/// Object-safe mirror of [`TmRuntime`], blanket-implemented for every
/// runtime: hold `Box<dyn DynRuntime>` (or `Arc<dyn DynRuntime>`) as a
/// value instead of writing a visitor.
pub trait DynRuntime: Send + Sync {
    /// The runtime's benchmark-report name (mirrors [`TmRuntime::name`]).
    fn name(&self) -> &'static str;

    /// The shared transactional memory (mirrors [`TmRuntime::mem`]).
    fn mem(&self) -> &Arc<TmMemory>;

    /// Creates a boxed handle for the calling thread (mirrors
    /// [`TmRuntime::register_thread`]).
    fn register_dyn(&self) -> Box<dyn DynThread>;
}

impl<R: TmRuntime> DynRuntime for R {
    fn name(&self) -> &'static str {
        TmRuntime::name(self)
    }

    fn mem(&self) -> &Arc<TmMemory> {
        TmRuntime::mem(self)
    }

    fn register_dyn(&self) -> Box<dyn DynThread> {
        Box::new(self.register_thread())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runtime::DirectRuntime;
    use crate::typed::{TxCell, TypedAlloc};

    fn boxed() -> Box<dyn DynRuntime> {
        Box::new(DirectRuntime::new(128))
    }

    #[test]
    fn dyn_runtime_mirrors_the_generic_surface() {
        let rt = boxed();
        assert_eq!(rt.name(), "Direct");
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_dyn();
        assert!(th.thread_id() < 64);
        th.run(|tx| tx.write(addr, 9));
        assert_eq!(rt.mem().heap().load(addr), 9);
        assert_eq!(th.stats().commits(), 1);
        th.stats_mut().reset();
        assert_eq!(th.stats().commits(), 0);
    }

    #[test]
    fn typed_cells_work_through_dyn_txn() {
        let rt = boxed();
        let cell: TxCell<bool> = rt.mem().alloc_cell();
        let mut th = rt.register_dyn();
        th.run(|tx| cell.write(tx, true));
        assert!(th.run(|tx| cell.read(tx)));
    }

    #[test]
    fn boxed_threads_move_across_real_threads() {
        let rt: Arc<dyn DynRuntime> = Arc::from(boxed());
        let cell = rt.mem().alloc(1);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_dyn();
                    for _ in 0..100 {
                        th.run(|tx| {
                            let v = tx.read(cell)?;
                            tx.write(cell, v + 1)
                        });
                    }
                    th.stats().commits()
                })
            })
            .collect();
        let commits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(commits, 200);
    }

    #[test]
    fn retried_bodies_report_the_last_committed_value() {
        // An abort between the value capture and the commit must not leak
        // a stale result: `run` returns the committed attempt's value.
        let rt = boxed();
        let cell = rt.mem().alloc(1);
        let mut th = rt.register_dyn();
        let mut attempts = 0;
        let got = th.run(|tx| {
            attempts += 1;
            tx.write(cell, attempts)?;
            if attempts < 3 {
                return Err(crate::Abort::conflict());
            }
            Ok(attempts)
        });
        assert_eq!(got, 3);
        assert_eq!(th.stats().commits(), 1);
        assert_eq!(th.stats().aborts(), 2);
    }
}
