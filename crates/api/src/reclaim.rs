//! Epoch-based reclamation: typed node pools over the per-thread arenas.
//!
//! The structures used to manage free nodes with the transactional
//! [`crate::typed::TxFreeList`] — a linked list *inside* the heap whose
//! every push/pop joined the surrounding transaction's read and write
//! sets.  That coupled spare management to the hottest transactions and
//! still never returned memory: an unlinked node could only ever be reused
//! by the one structure whose freelist held it, and only through more
//! transactional traffic.
//!
//! [`NodePool`] replaces it.  Spare management lives entirely **outside**
//! the transactions, in ordinary Rust memory (per-thread free and retired
//! lists of [`TxPtr`]s); only the nodes themselves live in the
//! transactional heap.  The life cycle:
//!
//! 1. **Allocate** ([`NodePool::try_alloc`]) — pop a recycled node, or
//!    carve a fresh one from the thread's arena
//!    ([`TmMemory::arena_try_alloc`]).  Always done *before* the
//!    transaction starts: an allocation inside a transaction body would
//!    repeat on every abort/retry.
//! 2. **Pin** ([`EpochGuard`]) — around the transaction that links or
//!    unlinks the node.
//! 3. **Retire** ([`NodePool::retire`]) — after the unlinking transaction
//!    *committed* (never inside the body: an aborted attempt unlinks
//!    nothing, so its victim must not be retired).  The node is stamped
//!    with the current epoch.
//! 4. **Reclaim** — a retired node returns to the free list once the
//!    epoch set has advanced twice past its retire epoch
//!    ([`EpochSet::is_safe`]), i.e. once no thread can still hold a
//!    reference acquired before the unlink committed.
//!
//! ## Safety argument
//!
//! Transactional readers are already protected by the protocols
//! themselves: every runtime validates stripe versions (or relies on HTM
//! conflict detection), so a transaction that read a link to a node which
//! was then unlinked, reclaimed and rewritten observes a version bump and
//! aborts — reuse-ABA cannot commit.  The epochs add the *generic*
//! guarantee the protocols cannot: a node is never **rewritten** while any
//! pinned operation that could have acquired a pre-unlink reference is
//! still running, which is what makes non-transactional consumers
//! (quiescent snapshots, the history checkers, future lock-free readers)
//! and cross-thread node reuse sound.  Every physical reclaim re-checks
//! [`EpochSet::is_safe`]; a violation (only reachable through the
//! test-only [`NodePool::reclaim_ignoring_epochs`] hook) is counted in
//! [`NodePool::unsafe_reclaims`], which the reclamation self-test asserts
//! on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rhtm_mem::{CachePadded, EpochSet, MemMetrics, OutOfMemory, TmMemory};

use crate::typed::{Record, TxPtr};

/// An RAII pin on an [`EpochSet`]: pins the calling thread's slot at the
/// current epoch on construction, unpins on drop.
///
/// Hold one around any operation that may traverse shared nodes while a
/// concurrent remove could retire them.  Order matters on the mutating
/// paths: allocate spares *before* pinning (a thread pinned at epoch `e`
/// blocks the advances its own allocation needs to recycle memory), and
/// retire *after* dropping the guard.
pub struct EpochGuard<'a> {
    epochs: &'a EpochSet,
    thread_id: usize,
    epoch: u64,
}

impl<'a> EpochGuard<'a> {
    /// Pins `thread_id` at the current epoch.
    pub fn pin(epochs: &'a EpochSet, thread_id: usize) -> Self {
        let epoch = epochs.pin(thread_id);
        EpochGuard {
            epochs,
            thread_id,
            epoch,
        }
    }

    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.epochs.unpin(self.thread_id);
    }
}

impl std::fmt::Debug for EpochGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGuard")
            .field("thread_id", &self.thread_id)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// How many reclaim-and-retry rounds a full-heap allocation waits for
/// pending retirees to age out before reporting [`OutOfMemory`].  Each
/// round attempts two epoch advances, sweeps every slot, and yields, so
/// the bound comfortably outlasts any single pinned transaction attempt
/// (backoff spins are clamped) while still failing fast — within tens of
/// milliseconds — when the heap is genuinely undersized.
const ALLOC_RESCUE_ROUNDS: usize = 4096;

/// One thread's free and retired node lists.  Ordinary Rust memory — the
/// transactional heap holds only the nodes, never the bookkeeping.
struct PoolSlot<R: Record> {
    free: Vec<TxPtr<R>>,
    /// Retired nodes with their retire epoch, oldest first (epochs are
    /// monotone per thread, so the front is always the first reclaimable).
    retired: VecDeque<(u64, TxPtr<R>)>,
}

impl<R: Record> Default for PoolSlot<R> {
    fn default() -> Self {
        PoolSlot {
            free: Vec::new(),
            retired: VecDeque::new(),
        }
    }
}

/// A typed node pool with epoch-based reclamation, shared by all threads
/// of one structure.
///
/// Each thread owns a [`CachePadded`] slot (free list + retired queue)
/// guarded by a `Mutex` that is only ever contended by quiescent
/// inspection ([`NodePool::pending`] / [`NodePool::cached`]), so the hot
/// path is an uncontended lock plus a `Vec` push/pop.
pub struct NodePool<R: Record> {
    mem: Arc<TmMemory>,
    slots: Box<[CachePadded<Mutex<PoolSlot<R>>>]>,
    retired_total: AtomicU64,
    reclaimed_total: AtomicU64,
    fresh_total: AtomicU64,
    unsafe_reclaims: AtomicU64,
}

impl<R: Record> NodePool<R> {
    /// A pool over `mem`, with one slot per configured thread
    /// (`MemConfig::max_threads`).
    pub fn new(mem: Arc<TmMemory>) -> Self {
        let threads = mem.layout().config().max_threads;
        let slots = (0..threads)
            .map(|_| CachePadded::new(Mutex::new(PoolSlot::default())))
            .collect();
        NodePool {
            mem,
            slots,
            retired_total: AtomicU64::new(0),
            reclaimed_total: AtomicU64::new(0),
            fresh_total: AtomicU64::new(0),
            unsafe_reclaims: AtomicU64::new(0),
        }
    }

    /// The memory this pool allocates from.
    pub fn mem(&self) -> &Arc<TmMemory> {
        &self.mem
    }

    #[inline]
    fn slot(&self, thread_id: usize) -> std::sync::MutexGuard<'_, PoolSlot<R>> {
        // A poisoned slot means a panic mid-push/pop on plain Vec ops;
        // the lists are still structurally sound, so keep going.
        match self.slots[thread_id % self.slots.len()].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Moves every reclaimable retiree (epoch safely passed) of `slot`
    /// onto its free list.
    fn harvest(&self, slot: &mut PoolSlot<R>, metrics: &mut MemMetrics) {
        let epochs = self.mem.epochs();
        while let Some(&(epoch, node)) = slot.retired.front() {
            if !epochs.is_safe(epoch) {
                break;
            }
            slot.retired.pop_front();
            slot.free.push(node);
            metrics.reclaimed += 1;
            self.reclaimed_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Allocates one node for `thread_id`, preferring recycled memory.
    ///
    /// Must be called **unpinned** and outside any transaction: the
    /// reclaim path advances the epoch set, which the caller's own pin
    /// would block, and a fresh arena allocation inside a transaction
    /// body would leak one node per abort.  Recycling order: pop the free
    /// list; else harvest safely-aged retirees; else nudge the epoch
    /// forward (up to the two advances a fresh retiree needs) and harvest
    /// again; else, while any retiree is pending anywhere, steal a
    /// recycled node from another thread's slot; only then carve new
    /// words from the thread's arena.
    pub fn try_alloc(
        &self,
        thread_id: usize,
        metrics: &mut MemMetrics,
    ) -> Result<TxPtr<R>, OutOfMemory> {
        {
            let mut slot = self.slot(thread_id);
            if let Some(node) = slot.free.pop() {
                return Ok(node);
            }
            self.harvest(&mut slot, metrics);
            if slot.retired.front().is_some() {
                let epochs = self.mem.epochs();
                for _ in 0..2 {
                    if epochs.try_advance() {
                        metrics.epoch_advances += 1;
                    }
                }
                self.harvest(&mut slot, metrics);
            }
            if let Some(node) = slot.free.pop() {
                return Ok(node);
            }
        }
        // The local slot is dry — steal before carving fresh words.
        // Per-thread recycling alone is unbounded under skewed mixes: a
        // thread whose draws lean toward inserts keeps allocating while
        // another thread's slot piles up retirees, growing the heap for
        // the run's whole duration (the shared TxFreeList never had this
        // failure mode).  The scan is gated on the global pending count so
        // pure growth, with nothing recyclable anywhere, goes straight to
        // the arena.
        if self.retired_total.load(Ordering::Relaxed) > self.reclaimed_total.load(Ordering::Relaxed)
        {
            // Age the pending retirees first: the local block only nudges
            // the epoch when *this* slot holds retirees, and the ones we
            // are about to steal live elsewhere.
            let epochs = self.mem.epochs();
            for _ in 0..2 {
                if epochs.try_advance() {
                    metrics.epoch_advances += 1;
                }
            }
            let n = self.slots.len();
            // Reduce before adding: `slot()` wraps anyway, but the sum
            // itself must not overflow for out-of-range thread ids, which
            // `arena_try_alloc` deliberately accepts.
            let tid = thread_id % n;
            for i in 1..n {
                let mut slot = self.slot(tid + i);
                self.harvest(&mut slot, metrics);
                if let Some(node) = slot.free.pop() {
                    return Ok(node);
                }
            }
        }
        let oom = match self.mem.arena_try_alloc(thread_id, R::WORDS) {
            Ok(addr) => {
                metrics.alloc_words += R::WORDS as u64;
                self.fresh_total.fetch_add(1, Ordering::Relaxed);
                return Ok(TxPtr::new(addr));
            }
            Err(oom) => oom,
        };
        // The heap is full.  If retirees are pending, they are stuck
        // behind a straggler pin — typically a thread paced out by its
        // retry policy mid-transaction — and the right response is
        // backpressure, not failure: a correctly-sized workload must not
        // OOM because reclamation briefly lost the race with allocation.
        // Wait (bounded, so genuine undersizing still errors) for the
        // epoch to turn over and retry the reclaim paths.
        for _ in 0..ALLOC_RESCUE_ROUNDS {
            let epochs = self.mem.epochs();
            for _ in 0..2 {
                if epochs.try_advance() {
                    metrics.epoch_advances += 1;
                }
            }
            let tid = thread_id % self.slots.len();
            for i in 0..self.slots.len() {
                let mut slot = self.slot(tid + i);
                self.harvest(&mut slot, metrics);
                if let Some(node) = slot.free.pop() {
                    return Ok(node);
                }
            }
            if self.retired_total.load(Ordering::Relaxed)
                <= self.reclaimed_total.load(Ordering::Relaxed)
            {
                break;
            }
            std::thread::yield_now();
        }
        Err(oom)
    }

    /// Retires a node that a **committed** transaction unlinked.  The node
    /// becomes reclaimable two epoch advances from now.
    ///
    /// Never call this for a transaction attempt that aborted — the node
    /// is still linked.  The structure wrappers express this by resetting
    /// their victim capture at the top of each closure attempt and
    /// retiring only after `execute` returns.
    pub fn retire(&self, thread_id: usize, node: TxPtr<R>, metrics: &mut MemMetrics) {
        let epoch = self.mem.epochs().current();
        self.slot(thread_id).retired.push_back((epoch, node));
        metrics.retired += 1;
        self.retired_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns an allocated-but-never-published node (an unused spare)
    /// straight to the free list — no epoch ageing needed, nothing ever
    /// saw it.
    pub fn give_back(&self, thread_id: usize, node: TxPtr<R>) {
        self.slot(thread_id).free.push(node);
    }

    /// Total nodes ever retired.
    pub fn retired_count(&self) -> u64 {
        self.retired_total.load(Ordering::SeqCst)
    }

    /// Total retired nodes physically reclaimed onto a free list.
    pub fn reclaimed_count(&self) -> u64 {
        self.reclaimed_total.load(Ordering::SeqCst)
    }

    /// Total fresh (arena/global) node allocations.
    pub fn fresh_count(&self) -> u64 {
        self.fresh_total.load(Ordering::SeqCst)
    }

    /// Physical reclaims that happened although [`EpochSet::is_safe`] said
    /// the retire epoch had **not** safely passed.  Always zero through
    /// the public API; the mutation hook
    /// [`NodePool::reclaim_ignoring_epochs`] exists to prove this counter
    /// actually fires (see `tests/reclamation.rs`).
    pub fn unsafe_reclaims(&self) -> u64 {
        self.unsafe_reclaims.load(Ordering::SeqCst)
    }

    /// Retired nodes not yet reclaimed (in-flight), measured by walking
    /// the actual queues.  At quiescence this must equal
    /// `retired_count() - reclaimed_count()` — the leak-test identity.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.retired.len(),
                Err(poisoned) => poisoned.into_inner().retired.len(),
            })
            .sum()
    }

    /// Nodes sitting on the free lists, measured by walking them.
    pub fn cached(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.free.len(),
                Err(poisoned) => poisoned.into_inner().free.len(),
            })
            .sum()
    }

    /// Drains every retired queue at quiescence (no live pins except
    /// possibly the caller's own threads being done): advances the epoch
    /// set past the newest retiree and harvests every slot.  Returns the
    /// number of nodes reclaimed.  Used by leak tests to prove
    /// `retired == reclaimed` once nothing is in flight.
    pub fn drain_quiescent(&self, metrics: &mut MemMetrics) -> usize {
        let epochs = self.mem.epochs();
        // Two advances age the newest possible retiree out; extra failed
        // attempts are harmless (a live pin just stops the drain early).
        for _ in 0..2 {
            if epochs.try_advance() {
                metrics.epoch_advances += 1;
            }
        }
        let mut drained = 0;
        for i in 0..self.slots.len() {
            let mut slot = self.slot(i);
            let before = slot.retired.len();
            self.harvest(&mut slot, metrics);
            drained += before - slot.retired.len();
        }
        drained
    }

    /// Test-only mutation hook: drains `thread_id`'s retired queue onto
    /// the free list **without waiting for epochs**, counting every entry
    /// whose epoch had not safely passed in [`NodePool::unsafe_reclaims`].
    ///
    /// This deliberately breaks the reclamation contract so the self-test
    /// can prove a too-early reclaim is detected; never call it from
    /// production code.
    #[doc(hidden)]
    pub fn reclaim_ignoring_epochs(&self, thread_id: usize, metrics: &mut MemMetrics) -> usize {
        let epochs = self.mem.epochs();
        let mut slot = self.slot(thread_id);
        let mut drained = 0;
        while let Some((epoch, node)) = slot.retired.pop_front() {
            if !epochs.is_safe(epoch) {
                self.unsafe_reclaims.fetch_add(1, Ordering::SeqCst);
            }
            slot.free.push(node);
            metrics.reclaimed += 1;
            self.reclaimed_total.fetch_add(1, Ordering::Relaxed);
            drained += 1;
        }
        drained
    }
}

impl<R: Record> std::fmt::Debug for NodePool<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePool")
            .field("retired", &self.retired_count())
            .field("reclaimed", &self.reclaimed_count())
            .field("fresh", &self.fresh_count())
            .field("pending", &self.pending())
            .field("cached", &self.cached())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typed::{LayoutBuilder, TxLayout};
    use rhtm_mem::MemConfig;

    struct Node;
    const NODE: (TxLayout<Node>,) = {
        let b = LayoutBuilder::<Node>::new();
        let b = b.pad_to(4);
        (b.finish(),)
    };
    impl Record for Node {
        const LAYOUT: TxLayout<Node> = NODE.0;
    }

    fn mem() -> Arc<TmMemory> {
        Arc::new(TmMemory::new(MemConfig::with_data_words(1 << 14)))
    }

    #[test]
    fn guard_pins_and_unpins() {
        let mem = mem();
        let epochs = mem.epochs();
        {
            let g = EpochGuard::pin(epochs, 0);
            assert_eq!(g.epoch(), epochs.current());
            assert!(epochs.try_advance(), "a current pin does not block");
            assert!(!epochs.try_advance(), "a lagging pin does");
        }
        assert!(epochs.try_advance(), "dropping the guard unpins");
    }

    #[test]
    fn retire_then_alloc_recycles_after_two_advances() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        let node = pool.try_alloc(0, &mut m).unwrap();
        assert_eq!(m.alloc_words, Node::WORDS as u64);
        pool.retire(0, node, &mut m);
        assert_eq!(m.retired, 1);
        // The next allocation cannot reuse the node until two epoch
        // advances — which try_alloc drives itself when unpinned — and
        // must return exactly the retired node, not fresh words.
        let global_before = mem.remaining_words();
        let again = pool.try_alloc(0, &mut m).unwrap();
        assert_eq!(again, node);
        assert_eq!(m.reclaimed, 1);
        assert!(m.epoch_advances >= 2);
        assert_eq!(mem.remaining_words(), global_before);
        assert_eq!(pool.retired_count(), 1);
        assert_eq!(pool.reclaimed_count(), 1);
        assert_eq!(pool.unsafe_reclaims(), 0);
    }

    #[test]
    fn a_foreign_pin_forces_fresh_allocation() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        let node = pool.try_alloc(0, &mut m).unwrap();
        let _guard = EpochGuard::pin(mem.epochs(), 1);
        pool.retire(0, node, &mut m);
        // Thread 1's pin blocks the advances, so the retiree cannot be
        // recycled and the pool must fall back to fresh memory.
        let other = pool.try_alloc(0, &mut m).unwrap();
        assert_ne!(other, node);
        assert_eq!(pool.pending(), 1);
        assert_eq!(pool.reclaimed_count(), 0);
    }

    #[test]
    fn a_dry_slot_steals_recycled_nodes_from_other_slots() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        // Thread 0 allocates and retires; its retiree sits in slot 0.
        let node = pool.try_alloc(0, &mut m).unwrap();
        pool.retire(0, node, &mut m);
        // Thread 1's slot is empty, but the pool-wide pending count lets
        // it harvest slot 0's safely-aged retiree instead of carving
        // fresh words — the bound that keeps skewed mixes from growing
        // the heap forever.
        let global_before = mem.remaining_words();
        let stolen = pool.try_alloc(1, &mut m).unwrap();
        assert_eq!(stolen, node);
        assert_eq!(mem.remaining_words(), global_before);
        assert_eq!(pool.reclaimed_count(), 1);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn out_of_range_thread_ids_steal_without_overflow() {
        // Thread ids past the configured capacity are legal callers
        // (`arena_try_alloc` routes them to the global allocator), so the
        // steal loop's slot arithmetic must not overflow on them — the id
        // is reduced modulo the slot count before any offset is added.
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        let node = pool.try_alloc(0, &mut m).unwrap();
        pool.retire(0, node, &mut m);
        let stolen = pool.try_alloc(usize::MAX, &mut m).unwrap();
        assert_eq!(stolen, node, "the pending retiree must still be found");
    }

    #[test]
    fn give_back_skips_the_epoch_wait() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        let spare = pool.try_alloc(0, &mut m).unwrap();
        let _guard = EpochGuard::pin(mem.epochs(), 1);
        pool.give_back(0, spare);
        // Unpublished spares recycle immediately, even under a pin.
        assert_eq!(pool.try_alloc(0, &mut m).unwrap(), spare);
    }

    #[test]
    fn drain_quiescent_reclaims_everything() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        for _ in 0..5 {
            let n = pool.try_alloc(3, &mut m).unwrap();
            pool.retire(3, n, &mut m);
        }
        assert_eq!(
            pool.pending() as u64,
            pool.retired_count() - pool.reclaimed_count()
        );
        let drained = pool.drain_quiescent(&mut m);
        assert!(drained >= 1);
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.retired_count(), pool.reclaimed_count());
        assert_eq!(pool.cached() as u64, pool.fresh_count());
        assert_eq!(pool.unsafe_reclaims(), 0);
    }

    #[test]
    fn the_mutation_hook_detects_too_early_reclaims() {
        let mem = mem();
        let pool: NodePool<Node> = NodePool::new(Arc::clone(&mem));
        let mut m = MemMetrics::default();
        let node = pool.try_alloc(0, &mut m).unwrap();
        let _reader = EpochGuard::pin(mem.epochs(), 1);
        pool.retire(0, node, &mut m);
        assert_eq!(pool.unsafe_reclaims(), 0);
        let drained = pool.reclaim_ignoring_epochs(0, &mut m);
        assert_eq!(drained, 1);
        assert!(
            pool.unsafe_reclaims() >= 1,
            "forcing a reclaim under a live pin must be counted"
        );
    }
}
