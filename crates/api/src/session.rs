//! Scoped worker sessions: structured multi-threaded execution over any
//! runtime, without hand-rolled `std::thread` spawn/join loops.
//!
//! Every multi-threaded user of a [`TmRuntime`] used to repeat the same
//! boilerplate: spawn N threads, `register_thread()` in each, hand-build a
//! `Barrier` so the workers start together, join the handles, remember not
//! to touch the runtime before the joins finish.  This module owns that
//! choreography once:
//!
//! * [`TmScopeExt::scope`] (blanket-implemented for
//!   every runtime) runs a closure on `workers` scoped threads.  Each
//!   worker receives a [`WorkerSession`] wrapping its freshly registered
//!   thread handle — registration, the synchronised start and the joins
//!   are all handled internally, and the per-worker results come back in
//!   worker order.
//! * [`DynScopeExt::scope_dyn`] is the same API over a dyn-erased
//!   [`DynRuntime`] (sessions wrap `Box<dyn DynThread>`), so spec-driven
//!   code can scope workers without naming a concrete runtime type.
//! * [`run_scoped`] is the primitive beneath both: it additionally hands
//!   the *calling* thread a [`ScopeControl`], which is what a benchmark
//!   driver needs — let every worker finish its setup, start the
//!   measurement clock exactly when they are released, and keep running
//!   controller logic (deadline sleeps, stop flags) while the workers
//!   work.
//!
//! # Example
//!
//! ```
//! use rhtm_api::session::TmScopeExt;
//! use rhtm_api::test_runtime::DirectRuntime;
//! use rhtm_api::{TmRuntime, TmThread, Txn};
//!
//! let rt = DirectRuntime::new(64);
//! let counter = rt.mem().alloc(1);
//! // Four workers, each with its own registered thread handle; no spawn,
//! // join or barrier code in sight.
//! let commits = rt.scope(4, |session| {
//!     for _ in 0..10 {
//!         session.execute(|tx| {
//!             let v = tx.read(counter)?;
//!             tx.write(counter, v + 1)
//!         });
//!     }
//!     session.stats().commits()
//! });
//! assert_eq!(commits, vec![10; 4]);
//! assert_eq!(rt.mem().heap().load(counter), 40);
//! ```

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::Barrier;

use crate::dynamic::{DynRuntime, DynThread};
use crate::traits::TmRuntime;

/// One worker's view of a scoped session: its registered thread handle
/// plus its position in the worker group.
///
/// Dereferences to the wrapped thread handle, so `session.execute(..)` /
/// `session.stats()` read exactly like the plain handle did.
pub struct WorkerSession<'scope, Th> {
    thread: Th,
    index: usize,
    count: usize,
    start: &'scope Barrier,
    /// Shared with the spawn frame's release-on-unwind guard, so a panic
    /// before the sync point still releases the start barrier exactly
    /// once (see `run_scoped`).
    synced: &'scope Cell<bool>,
}

impl<Th> WorkerSession<'_, Th> {
    /// This worker's index in the session, `0..worker_count()`.
    ///
    /// Distinct from the runtime-assigned
    /// [`thread_id`](crate::TmThread::thread_id): the index is always the
    /// dense spawn order of *this* scope, even when the runtime's registry
    /// has served other threads before.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers in the session.
    pub fn worker_count(&self) -> usize {
        self.count
    }

    /// The wrapped thread handle.
    pub fn thread_mut(&mut self) -> &mut Th {
        &mut self.thread
    }

    /// Waits until every worker (and the controller, if the scope was
    /// started through [`run_scoped`]) reaches this point, so per-worker
    /// setup never counts as measured work.  Idempotent: only the first
    /// call waits.  [`TmScopeExt::scope`] syncs automatically before the
    /// worker closure runs; closures passed to [`run_scoped`] call this
    /// themselves once their setup is done (the scope syncs on their
    /// behalf after the closure returns if they never did).
    pub fn sync(&mut self) {
        if !self.synced.get() {
            self.synced.set(true);
            self.start.wait();
        }
    }
}

impl<Th> Deref for WorkerSession<'_, Th> {
    type Target = Th;

    fn deref(&self) -> &Th {
        &self.thread
    }
}

impl<Th> DerefMut for WorkerSession<'_, Th> {
    fn deref_mut(&mut self) -> &mut Th {
        &mut self.thread
    }
}

/// The calling thread's handle on a running scope (see [`run_scoped`]).
///
/// Dropping the control without having called
/// [`wait_ready`](ScopeControl::wait_ready) waits then, so a controller
/// that has no setup of its own can simply drop it and the workers are
/// released.
pub struct ScopeControl<'scope> {
    ready: &'scope Barrier,
    workers: usize,
    waited: bool,
}

impl ScopeControl<'_> {
    /// Number of workers in the session.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Blocks until every worker has finished its setup and reached
    /// [`WorkerSession::sync`]; returns at the instant the workers are
    /// released, which is the right moment to start a measurement clock.
    /// Idempotent: only the first call waits.
    pub fn wait_ready(&mut self) {
        if !self.waited {
            self.waited = true;
            self.ready.wait();
        }
    }
}

impl Drop for ScopeControl<'_> {
    fn drop(&mut self) {
        self.wait_ready();
    }
}

/// The scope primitive: runs `worker` on `workers` scoped threads, each
/// wrapped in a [`WorkerSession`] around whatever `register` returns for
/// it, while `control` runs on the calling thread.
///
/// The session start is synchronised through one barrier shared by the
/// workers *and* the controller: each worker joins it via
/// [`WorkerSession::sync`] (automatically after the closure returns, if
/// the closure never called it), the controller via
/// [`ScopeControl::wait_ready`] (automatically when the control value
/// drops).  Worker results come back in worker-index order, joined before
/// this function returns — together with `control`'s result.
///
/// Most callers want the one-liner wrappers instead:
/// [`TmScopeExt::scope`] for a generic runtime,
/// [`DynScopeExt::scope_dyn`] for a dyn-erased one.
///
/// # Panics
///
/// Panics if `workers == 0`, and propagates panics from `register` and
/// the worker closures after all workers have been joined — a panic
/// before a worker's sync point releases the barrier on unwind, so the
/// controller and the remaining workers are never stranded.
pub fn run_scoped<Th, T, O>(
    workers: usize,
    register: impl Fn(usize) -> Th + Sync,
    worker: impl Fn(&mut WorkerSession<'_, Th>) -> T + Sync,
    control: impl FnOnce(ScopeControl<'_>) -> O,
) -> (Vec<T>, O)
where
    T: Send,
{
    assert!(workers >= 1, "a scope needs at least one worker");
    let start = Barrier::new(workers + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let start = &start;
                let register = &register;
                let worker = &worker;
                scope.spawn(move || {
                    // Release the start barrier exactly once no matter how
                    // this frame exits: a panic in `register` or in the
                    // worker closure before its sync point must not strand
                    // the controller and the other workers at the barrier
                    // (the panic still propagates through the join below).
                    let synced = Cell::new(false);
                    struct Release<'a> {
                        start: &'a Barrier,
                        synced: &'a Cell<bool>,
                    }
                    impl Drop for Release<'_> {
                        fn drop(&mut self) {
                            if !self.synced.get() {
                                self.synced.set(true);
                                self.start.wait();
                            }
                        }
                    }
                    let _release = Release {
                        start,
                        synced: &synced,
                    };
                    let mut session = WorkerSession {
                        thread: register(index),
                        index,
                        count: workers,
                        start,
                        synced: &synced,
                    };
                    let out = worker(&mut session);
                    // A worker that never synced still releases the
                    // barrier (via the guard, as on the panic path).
                    session.sync();
                    out
                })
            })
            .collect();
        let control_out = control(ScopeControl {
            ready: &start,
            workers,
            waited: false,
        });
        let outs = handles
            .into_iter()
            .map(|h| h.join().expect("scoped worker panicked"))
            .collect();
        (outs, control_out)
    })
}

/// Scoped worker sessions over any [`TmRuntime`] (blanket-implemented).
pub trait TmScopeExt: TmRuntime {
    /// Runs `f` on `workers` scoped threads, each handed a
    /// [`WorkerSession`] around its own freshly registered
    /// [`TmThread`](crate::TmThread).  All workers start together (the
    /// sync happens before `f` is invoked) and their results are returned
    /// in worker order once every thread has been joined.
    fn scope<T, F>(&self, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut WorkerSession<'_, Self::Thread>) -> T + Sync,
    {
        run_scoped(
            workers,
            |_| self.register_thread(),
            |session| {
                session.sync();
                f(session)
            },
            |_ctl| (),
        )
        .0
    }
}

impl<R: TmRuntime> TmScopeExt for R {}

/// Scoped worker sessions over a dyn-erased [`DynRuntime`]
/// (blanket-implemented, `?Sized` so it works on `dyn DynRuntime` behind
/// any pointer).
pub trait DynScopeExt: DynRuntime {
    /// [`TmScopeExt::scope`] with erased handles: each worker's session
    /// wraps a `Box<dyn DynThread>` (drive it with
    /// [`DynThreadExt::run`](crate::DynThreadExt::run)).
    fn scope_dyn<T, F>(&self, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut WorkerSession<'_, Box<dyn DynThread>>) -> T + Sync,
    {
        run_scoped(
            workers,
            |_| self.register_dyn(),
            |session| {
                session.sync();
                f(session)
            },
            |_ctl| (),
        )
        .0
    }
}

impl<R: DynRuntime + ?Sized> DynScopeExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynThreadExt;
    use crate::test_runtime::DirectRuntime;
    use crate::{TmThread, Txn};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn scope_registers_runs_and_joins_in_worker_order() {
        let rt = DirectRuntime::new(64);
        let cell = TmRuntime::mem(&rt).alloc(1);
        let outs = rt.scope(4, |session| {
            for _ in 0..25 {
                session.execute(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)
                });
            }
            let commits = TmThread::stats(&**session).commits();
            (session.index(), session.worker_count(), commits)
        });
        assert_eq!(outs.len(), 4);
        for (i, (index, count, commits)) in outs.iter().enumerate() {
            assert_eq!(*index, i, "results must come back in worker order");
            assert_eq!(*count, 4);
            assert_eq!(*commits, 25);
        }
        assert_eq!(TmRuntime::mem(&rt).heap().load(cell), 100);
    }

    #[test]
    fn scope_dyn_mirrors_the_generic_scope() {
        let rt: Box<dyn DynRuntime> = Box::new(DirectRuntime::new(64));
        let cell = DynRuntime::mem(&*rt).alloc(1);
        let outs = rt.scope_dyn(3, |session| {
            session.run(|tx| {
                let v = tx.read(cell)?;
                tx.write(cell, v + 1)
            });
            DynThread::stats(&***session).commits()
        });
        assert_eq!(outs, vec![1, 1, 1]);
        assert_eq!(DynRuntime::mem(&*rt).heap().load(cell), 3);
    }

    #[test]
    fn controller_sees_workers_only_after_their_setup() {
        // Workers do "setup" (bump a counter) before sync; the controller's
        // wait_ready must observe every setup completed.
        let rt = DirectRuntime::new(64);
        let setups = AtomicUsize::new(0);
        let (outs, seen) = run_scoped(
            4,
            |_| rt.register_thread(),
            |session| {
                setups.fetch_add(1, Ordering::SeqCst);
                session.sync();
                session.index()
            },
            |mut ctl| {
                assert_eq!(ctl.workers(), 4);
                ctl.wait_ready();
                setups.load(Ordering::SeqCst)
            },
        );
        assert_eq!(seen, 4, "controller released before all workers set up");
        assert_eq!(outs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropping_the_control_releases_the_workers() {
        let rt = DirectRuntime::new(64);
        let started = Instant::now();
        let (outs, ()) = run_scoped(
            2,
            |_| rt.register_thread(),
            |session| {
                session.sync();
                session.index()
            },
            |_ctl| (),
        );
        assert_eq!(outs, vec![0, 1]);
        // Guards against a deadlock regression: the whole scope must
        // complete promptly even though the controller never called
        // wait_ready explicitly.
        assert!(started.elapsed().as_secs() < 30);
    }

    #[test]
    fn forgotten_sync_still_releases_the_controller() {
        let rt = DirectRuntime::new(64);
        let (outs, ()) = run_scoped(
            2,
            |_| rt.register_thread(),
            |session| session.index(), // never calls sync()
            |_ctl| (),
        );
        assert_eq!(outs, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "scoped worker panicked")]
    fn pre_sync_panic_releases_the_barrier_and_propagates() {
        // A worker that dies before its sync point (here: registration
        // itself panics) must not strand the controller at the start
        // barrier — the scope must end in a panic, not a deadlock.
        let rt = DirectRuntime::new(64);
        let (_outs, ()) = run_scoped(
            2,
            |index| {
                if index == 1 {
                    panic!("registration failed");
                }
                rt.register_thread()
            },
            |session| {
                session.sync();
                session.index()
            },
            |_ctl| (),
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let rt = DirectRuntime::new(64);
        rt.scope(0, |_session| ());
    }
}
