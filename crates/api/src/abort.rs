//! Abort causes and the transactional result type.
//!
//! Both the simulated hardware transactions and the software paths signal
//! aborts through [`Abort`], carried in a `Result` so that user code can
//! propagate it with `?`.  The *cause* matters: the protocols take the
//! paper's decisions (retry in hardware, fall back to the mixed slow-path,
//! fall back to RH2, fall back to the all-software path) based on whether a
//! hardware transaction failed due to contention or due to a hardware
//! limitation (Algorithm 2 lines 44–49, Algorithm 3 lines 32–39).

use std::fmt;

/// Why a transaction attempt aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// A simulated hardware transaction lost a conflict: another thread
    /// wrote a cache line in its read- or write-set (or read a line in its
    /// write-set) before it committed.
    Conflict,
    /// A simulated hardware transaction exceeded its read- or write-capacity
    /// (the L1-like budget).  This is the "hardware limitation" the paper's
    /// fallback logic reacts to.
    Capacity,
    /// The protocol itself requested the abort (`HTM_Abort()`), e.g. because
    /// commit-time revalidation inside the hardware transaction failed or a
    /// fallback counter was observed non-zero.
    Explicit,
    /// An injected spurious abort (modelling interrupts, TLB misses and the
    /// other reasons best-effort HTM may fail even without contention).
    Spurious,
    /// An injected abort from the forced-abort-ratio knob that mirrors the
    /// paper's emulation methodology (§3.1: the STM abort ratio is forced
    /// onto the HTM execution at commit time).
    Forced,
    /// A software (STM-style) read observed an inconsistent location: the
    /// stripe version was newer than the transaction's start time-stamp or
    /// changed between the pre- and post-read checks.
    Validation,
    /// A software path found a stripe locked by another thread (TL2 and RH2
    /// encode a lock bit in the stripe version).
    Locked,
    /// A transaction attempted an operation the current path cannot execute
    /// (e.g. a "protected instruction" inside a hardware transaction); the
    /// runtime must fall back to a software path.
    Unsupported,
}

impl AbortCause {
    /// All causes, in a stable order (used for stats tables).
    pub const ALL: [AbortCause; 8] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::Explicit,
        AbortCause::Spurious,
        AbortCause::Forced,
        AbortCause::Validation,
        AbortCause::Locked,
        AbortCause::Unsupported,
    ];

    /// Dense index of this cause (for counter arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AbortCause::Conflict => 0,
            AbortCause::Capacity => 1,
            AbortCause::Explicit => 2,
            AbortCause::Spurious => 3,
            AbortCause::Forced => 4,
            AbortCause::Validation => 5,
            AbortCause::Locked => 6,
            AbortCause::Unsupported => 7,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::Spurious => "spurious",
            AbortCause::Forced => "forced",
            AbortCause::Validation => "validation",
            AbortCause::Locked => "locked",
            AbortCause::Unsupported => "unsupported",
        }
    }

    /// Snake-case key used in machine-readable (JSON) reports.
    ///
    /// Part of the stable schema emitted by
    /// `rhtm_workloads::report::to_json` and the `bench_suite` binary
    /// (`aborts_<json_key>` fields).  Every label is already a single
    /// lower-case word, so this is the label itself — the separate method
    /// exists to make the schema contract explicit at the type level.
    #[inline]
    pub fn json_key(self) -> &'static str {
        self.label()
    }

    /// Does this cause indicate a *hardware limitation* (as opposed to
    /// contention)?  The paper's fallback decisions hinge on this
    /// distinction: contention is retried on the same path, hardware
    /// limitations trigger a fall back to the next-slower path.
    #[inline]
    pub fn is_hardware_limitation(self) -> bool {
        matches!(self, AbortCause::Capacity | AbortCause::Unsupported)
    }

    /// Does this cause indicate contention (conflict with another
    /// transaction or an inconsistent read)?
    #[inline]
    pub fn is_contention(self) -> bool {
        matches!(
            self,
            AbortCause::Conflict | AbortCause::Validation | AbortCause::Locked | AbortCause::Forced
        )
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A transaction abort, to be propagated with `?` out of the transaction
/// body and handled by the runtime's retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Why the attempt aborted.
    pub cause: AbortCause,
}

impl Abort {
    /// Creates an abort with the given cause.
    #[inline]
    pub fn new(cause: AbortCause) -> Self {
        Abort { cause }
    }

    /// Shorthand for an [`AbortCause::Explicit`] abort.
    #[inline]
    pub fn explicit() -> Self {
        Abort::new(AbortCause::Explicit)
    }

    /// Shorthand for an [`AbortCause::Conflict`] abort.
    #[inline]
    pub fn conflict() -> Self {
        Abort::new(AbortCause::Conflict)
    }

    /// Shorthand for an [`AbortCause::Capacity`] abort.
    #[inline]
    pub fn capacity() -> Self {
        Abort::new(AbortCause::Capacity)
    }

    /// Shorthand for an [`AbortCause::Validation`] abort.
    #[inline]
    pub fn validation() -> Self {
        Abort::new(AbortCause::Validation)
    }

    /// Shorthand for an [`AbortCause::Locked`] abort.
    #[inline]
    pub fn locked() -> Self {
        Abort::new(AbortCause::Locked)
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted ({})", self.cause)
    }
}

impl std::error::Error for Abort {}

/// Result of a transactional operation or transaction body.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_unique() {
        let mut seen = [false; AbortCause::ALL.len()];
        for cause in AbortCause::ALL {
            let idx = cause.index();
            assert!(idx < AbortCause::ALL.len());
            assert!(!seen[idx], "duplicate index for {cause:?}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hardware_limitation_vs_contention_partition() {
        for cause in AbortCause::ALL {
            // No cause may be classified as both.
            assert!(
                !(cause.is_hardware_limitation() && cause.is_contention()),
                "{cause:?} classified as both limitation and contention"
            );
        }
        assert!(AbortCause::Capacity.is_hardware_limitation());
        assert!(AbortCause::Unsupported.is_hardware_limitation());
        assert!(AbortCause::Conflict.is_contention());
        assert!(AbortCause::Validation.is_contention());
        assert!(AbortCause::Locked.is_contention());
    }

    #[test]
    fn abort_constructors_carry_cause() {
        assert_eq!(Abort::explicit().cause, AbortCause::Explicit);
        assert_eq!(Abort::conflict().cause, AbortCause::Conflict);
        assert_eq!(Abort::capacity().cause, AbortCause::Capacity);
        assert_eq!(Abort::validation().cause, AbortCause::Validation);
        assert_eq!(Abort::locked().cause, AbortCause::Locked);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", Abort::capacity());
        assert!(s.contains("capacity"));
        assert_eq!(AbortCause::Spurious.to_string(), "spurious");
    }

    #[test]
    fn abort_propagates_with_question_mark() {
        fn body(fail: bool) -> TxResult<u64> {
            let v = if fail { Err(Abort::conflict()) } else { Ok(7) }?;
            Ok(v + 1)
        }
        assert_eq!(body(false), Ok(8));
        assert_eq!(body(true), Err(Abort::conflict()));
    }
}
