//! A minimal, strictly sequential reference runtime.
//!
//! [`DirectRuntime`] executes transaction bodies directly against the heap
//! with no buffering, no conflict detection and no concurrency support —
//! one thread at a time, by construction.  It exists so that documentation
//! examples and unit tests of runtime-agnostic code (the typed data layer,
//! the dyn-erased handles, workload logic) can run against *something*
//! without pulling a protocol crate into `rhtm-api`'s dependency graph.
//!
//! It is **not** a transactional memory: using it from more than one
//! thread at a time loses atomicity.  Every real runtime lives in the
//! protocol crates (`rhtm-htm`, `rhtm-stm`, `rhtm-hytm-std`, `rhtm-core`).

use std::sync::Arc;

use rhtm_mem::{MemConfig, ThreadRegistry, ThreadToken, TmMemory};

use crate::abort::TxResult;
use crate::stats::{PathKind, TxStats};
use crate::traits::{TmRuntime, TmThread, Txn};

/// A trivially-sequential runtime for docs and tests (see the
/// [module docs](self)).
pub struct DirectRuntime {
    mem: Arc<TmMemory>,
    registry: Arc<ThreadRegistry>,
}

impl DirectRuntime {
    /// Creates a runtime over a fresh heap with `data_words` data words.
    pub fn new(data_words: usize) -> Self {
        DirectRuntime {
            mem: Arc::new(TmMemory::new(MemConfig::with_data_words(data_words))),
            registry: ThreadRegistry::new(64),
        }
    }
}

/// The per-thread handle of [`DirectRuntime`].
pub struct DirectThread {
    mem: Arc<TmMemory>,
    token: ThreadToken,
    stats: TxStats,
    active: bool,
}

impl TmRuntime for DirectRuntime {
    type Thread = DirectThread;

    fn name(&self) -> &'static str {
        "Direct"
    }

    fn mem(&self) -> &Arc<TmMemory> {
        &self.mem
    }

    fn register_thread(&self) -> DirectThread {
        DirectThread {
            mem: Arc::clone(&self.mem),
            token: self.registry.register(),
            stats: TxStats::new(false),
            active: false,
        }
    }
}

impl Txn for DirectThread {
    fn read(&mut self, addr: rhtm_mem::Addr) -> TxResult<u64> {
        self.stats.record_read(0);
        Ok(self.mem.heap().load(addr))
    }

    fn write(&mut self, addr: rhtm_mem::Addr, value: u64) -> TxResult<()> {
        self.stats.record_write(0);
        self.mem.heap().store(addr, value);
        Ok(())
    }
}

impl TmThread for DirectThread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.active, "nested execute is not supported");
        self.active = true;
        let result = loop {
            match body(self) {
                Ok(r) => {
                    self.stats.record_commit(PathKind::Software);
                    break r;
                }
                Err(abort) => self.stats.record_abort(abort.cause),
            }
        };
        self.active = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}
