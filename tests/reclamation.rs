//! Reclamation stress for the memory subsystem: every mutable structure is
//! churned from several threads across a spread of specs, and the epoch
//! scheme's global accounting is checked against exact identities —
//! `retired == reclaimed + pending` at quiescence, nothing pending after a
//! quiescent drain, and zero `unsafe_reclaims` on every legitimate run.
//! A final mutation self-test proves the too-early-reclaim detector fires
//! when the epoch protocol is deliberately bypassed, so the zero
//! assertions above are known to be falsifiable.

use std::sync::Arc;

use rhtm_api::DynThreadExt;
use rhtm_mem::{MemConfig, MemMetrics};
use rhtm_workloads::structures::skiplist::InsertOutcome;
use rhtm_workloads::{
    ConstantHashTable, TmInstance, TmSpec, TransferOutcome, TxBank, TxQueue, TxSkipList,
    WorkloadRng,
};

/// The spec spread: a hybrid with a non-default clock and retry policy, a
/// pure STM with a delegated clock, and an RH1 cascade that mixes the
/// fast and slow hardware paths.  Reclamation is runtime-agnostic, so the
/// same churn and the same identities must hold on all of them.
const SPECS: [&str; 3] = ["rh2+gv6+adaptive", "tl2+gv5", "rh1-mixed-50"];

const WORKERS: usize = 4;

fn instance(label: &str, data_words: usize) -> TmInstance {
    TmSpec::parse(label)
        .unwrap_or_else(|| panic!("spec {label:?} must parse"))
        .mem(MemConfig::with_data_words(data_words))
        .build()
}

/// Sums per-worker metrics and checks the invariants every run shares:
/// the pool's global counters agree with the per-thread metrics, and the
/// quiescent ledger balances (`retired == reclaimed + pending`).
fn merge(per_worker: Vec<MemMetrics>) -> MemMetrics {
    let mut merged = MemMetrics::default();
    for m in &per_worker {
        merged.merge(m);
    }
    merged
}

#[test]
fn skiplist_churn_reclaims_on_every_spec() {
    for label in SPECS {
        let inst = instance(label, 1 << 18);
        let list = TxSkipList::new(Arc::clone(inst.sim()), 256);
        for key in (2..200).step_by(2) {
            list.seed_insert(key, key);
        }
        let per_worker = inst.scope(WORKERS, |session| {
            let mut rng = WorkloadRng::new(11 + session.index() as u64);
            for _ in 0..600 {
                let key = 1 + rng.next_below(200);
                let th = session.thread_mut();
                let tid = th.thread_id();
                if rng.draw_percent(50) {
                    let spare = list.alloc_spare(tid, &mut th.stats_mut().mem);
                    let outcome = {
                        let _guard = list.pin(tid);
                        th.run(|tx| list.insert_in(tx, key, key * 3, Some(spare)))
                    };
                    match outcome {
                        InsertOutcome::Inserted => {}
                        InsertOutcome::Updated => list.give_back_spare(tid, spare),
                        InsertOutcome::NeedNode => unreachable!("a spare was supplied"),
                    }
                } else {
                    let removed = {
                        let _guard = list.pin(tid);
                        th.run(|tx| list.remove_in(tx, key))
                    };
                    if let Some((_, node)) = removed {
                        list.retire_node(tid, node, &mut th.stats_mut().mem);
                    }
                }
            }
            session.thread_mut().stats().mem.clone()
        });
        let mem = merge(per_worker);
        assert!(list.is_well_formed_quiescent(), "{label}");
        assert!(mem.retired > 0 && mem.reclaimed > 0, "{label}: {mem:?}");
        let pool = list.pool();
        assert_eq!(pool.retired_count(), mem.retired, "{label}");
        assert_eq!(pool.reclaimed_count(), mem.reclaimed, "{label}");
        assert_eq!(
            pool.retired_count(),
            pool.reclaimed_count() + pool.pending() as u64,
            "{label}: the quiescent ledger must balance"
        );
        assert_eq!(pool.unsafe_reclaims(), 0, "{label}");
    }
}

#[test]
fn hashtable_extension_reclaims_on_every_spec() {
    for label in SPECS {
        let inst = instance(label, 1 << 18);
        let table = ConstantHashTable::new(Arc::clone(inst.sim()), 512);
        let per_worker = inst.scope(WORKERS, |session| {
            let mut rng = WorkloadRng::new(29 + session.index() as u64);
            for _ in 0..500 {
                // Churned keys live outside the constant 0..512 seed so the
                // paper workload's footprint is untouched.
                let key = 1_000 + rng.next_below(96);
                let th = session.thread_mut();
                let tid = th.thread_id();
                if rng.draw_percent(50) {
                    let spare = table.alloc_spare(tid, &mut th.stats_mut().mem);
                    let outcome = {
                        let _guard = table.pin(tid);
                        th.run(|tx| table.insert_in(tx, key, key + 7, Some(spare)))
                    };
                    match outcome {
                        InsertOutcome::Inserted => {}
                        InsertOutcome::Updated => table.pool().give_back(tid, spare),
                        InsertOutcome::NeedNode => unreachable!("a spare was supplied"),
                    }
                } else {
                    let removed = {
                        let _guard = table.pin(tid);
                        th.run(|tx| table.remove_in(tx, key))
                    };
                    if let Some((_, node)) = removed {
                        table.pool().retire(tid, node, &mut th.stats_mut().mem);
                    }
                }
            }
            session.thread_mut().stats().mem.clone()
        });
        let mem = merge(per_worker);
        assert!(mem.retired > 0 && mem.reclaimed > 0, "{label}: {mem:?}");
        let pool = table.pool();
        assert_eq!(
            pool.retired_count(),
            pool.reclaimed_count() + pool.pending() as u64,
            "{label}"
        );
        assert_eq!(pool.unsafe_reclaims(), 0, "{label}");
        // The constant 0..512 seed is still fully reachable; churned keys
        // that happen to be live at quiescence come on top.
        assert!(table.count_reachable() >= 512, "{label}: seed lost");
    }
}

#[test]
fn bank_audit_ring_reclaims_on_every_spec() {
    for label in SPECS {
        let inst = instance(label, 1 << 18);
        let accounts = 32u64;
        let audit_cap = 64u64;
        let bank = TxBank::new(Arc::clone(inst.sim()), accounts, 1_000, audit_cap);
        let per_worker = inst.scope(WORKERS, |session| {
            let mut rng = WorkloadRng::new(47 + session.index() as u64);
            let audit = bank.audit();
            for _ in 0..400 {
                let from = rng.next_below(accounts);
                let to = rng.next_below(accounts);
                let th = session.thread_mut();
                let tid = th.thread_id();
                let spare = audit.alloc_spare(tid, &mut th.stats_mut().mem);
                let mut evicted = None;
                let outcome = {
                    let _guard = audit.pin(tid);
                    th.run(|tx| bank.transfer_in(tx, from, to, 3, Some(spare), &mut evicted))
                };
                if let Some(node) = evicted {
                    audit.retire_node(tid, node, &mut th.stats_mut().mem);
                }
                if outcome != TransferOutcome::Applied {
                    audit.give_back_spare(tid, spare);
                }
            }
            session.thread_mut().stats().mem.clone()
        });
        let mem = merge(per_worker);
        // Far more applied transfers than the ring holds, so evictions —
        // and therefore retirements — must have happened.
        assert!(mem.retired > 0 && mem.reclaimed > 0, "{label}: {mem:?}");
        let pool = bank.audit().pool();
        assert_eq!(
            pool.retired_count(),
            pool.reclaimed_count() + pool.pending() as u64,
            "{label}"
        );
        assert_eq!(pool.unsafe_reclaims(), 0, "{label}");
        let mut th = inst.register();
        let total = th.run(|tx| bank.scan_total_in(tx));
        assert_eq!(total, bank.expected_total(), "{label}: conservation");
    }
}

#[test]
fn queue_traffic_coexists_with_reclamation_on_every_spec() {
    // The queue retires nothing, but its mutating wrappers pin like every
    // other structure.  Run queue churn and skiplist churn over the same
    // heap and epoch set: the pins must serialise correctly (no unsafe
    // reclaims) without starving the skiplist of recycled nodes.
    for label in SPECS {
        let inst = instance(label, 1 << 18);
        let queue = TxQueue::new(Arc::clone(inst.sim()), 64);
        let list = TxSkipList::new(Arc::clone(inst.sim()), 128);
        let per_worker = inst.scope(WORKERS, |session| {
            let mut rng = WorkloadRng::new(83 + session.index() as u64);
            let queue_worker = session.index() % 2 == 0;
            for _ in 0..500 {
                let th = session.thread_mut();
                let tid = th.thread_id();
                if queue_worker {
                    let _guard = queue.pin(tid);
                    if rng.draw_percent(50) {
                        let v = rng.next_below(1 << 20);
                        th.run(|tx| queue.enqueue_in(tx, v));
                    } else {
                        th.run(|tx| queue.dequeue_in(tx));
                    }
                } else {
                    let key = 1 + rng.next_below(64);
                    if rng.draw_percent(50) {
                        let spare = list.alloc_spare(tid, &mut th.stats_mut().mem);
                        let outcome = {
                            let _guard = list.pin(tid);
                            th.run(|tx| list.insert_in(tx, key, key, Some(spare)))
                        };
                        if outcome != InsertOutcome::Inserted {
                            list.give_back_spare(tid, spare);
                        }
                    } else {
                        let removed = {
                            let _guard = list.pin(tid);
                            th.run(|tx| list.remove_in(tx, key))
                        };
                        if let Some((_, node)) = removed {
                            list.retire_node(tid, node, &mut th.stats_mut().mem);
                        }
                    }
                }
            }
            session.thread_mut().stats().mem.clone()
        });
        let mem = merge(per_worker);
        assert!(mem.retired > 0, "{label}: {mem:?}");
        assert!(
            mem.reclaimed > 0,
            "{label}: queue pins must not starve reclamation ({mem:?})"
        );
        let pool = list.pool();
        assert_eq!(
            pool.retired_count(),
            pool.reclaimed_count() + pool.pending() as u64,
            "{label}"
        );
        assert_eq!(pool.unsafe_reclaims(), 0, "{label}");
        assert!(list.is_well_formed_quiescent(), "{label}");
    }
}

#[test]
fn quiescent_drain_leaves_nothing_pending() {
    let inst = instance("rh2", 1 << 18);
    let list = TxSkipList::new(Arc::clone(inst.sim()), 512);
    let per_worker = inst.scope(WORKERS, |session| {
        let mut rng = WorkloadRng::new(5 + session.index() as u64);
        for _ in 0..400 {
            let key = 1 + rng.next_below(256);
            let th = session.thread_mut();
            let tid = th.thread_id();
            if rng.draw_percent(60) {
                let spare = list.alloc_spare(tid, &mut th.stats_mut().mem);
                let outcome = {
                    let _guard = list.pin(tid);
                    th.run(|tx| list.insert_in(tx, key, key, Some(spare)))
                };
                if outcome != InsertOutcome::Inserted {
                    list.give_back_spare(tid, spare);
                }
            } else {
                let removed = {
                    let _guard = list.pin(tid);
                    th.run(|tx| list.remove_in(tx, key))
                };
                if let Some((_, node)) = removed {
                    list.retire_node(tid, node, &mut th.stats_mut().mem);
                }
            }
        }
        session.thread_mut().stats().mem.clone()
    });
    let mem = merge(per_worker);
    let pool = list.pool();
    // Leak identity at quiescence: every retired node is either reclaimed
    // or still pending its grace period — none lost.
    assert_eq!(
        mem.retired,
        pool.reclaimed_count() + pool.pending() as u64,
        "{mem:?}"
    );
    // With all threads unpinned the drain advances the epoch past every
    // retirement and frees the remainder.
    let mut drain = MemMetrics::default();
    let freed = pool.drain_quiescent(&mut drain);
    assert_eq!(freed as u64, drain.reclaimed);
    assert_eq!(pool.pending(), 0, "nothing may survive a quiescent drain");
    assert_eq!(pool.retired_count(), pool.reclaimed_count());
    assert_eq!(pool.unsafe_reclaims(), 0);
}

#[test]
fn the_too_early_reclaim_detector_is_falsifiable() {
    // Mutation self-test: deliberately break the protocol — hold a foreign
    // thread's pin (a reader notionally still inside the structure) and
    // force reclamation anyway.  The detector must flag every node whose
    // grace period had not elapsed; if this assertion ever fails, the
    // `unsafe_reclaims() == 0` checks in the tests above are vacuous.
    let inst = instance("rh2", 1 << 16);
    let list = TxSkipList::new(Arc::clone(inst.sim()), 64);
    let mut th = inst.register();
    let tid = th.thread_id();
    let foreign_guard = list.pin(tid + 1);
    for key in 1..=20u64 {
        let spare = list.alloc_spare(tid, &mut th.stats_mut().mem);
        let outcome = {
            let _guard = list.pin(tid);
            th.run(|tx| list.insert_in(tx, key, key, Some(spare)))
        };
        assert_eq!(outcome, InsertOutcome::Inserted);
        let removed = {
            let _guard = list.pin(tid);
            th.run(|tx| list.remove_in(tx, key))
        };
        let (_, node) = removed.expect("just inserted");
        list.retire_node(tid, node, &mut th.stats_mut().mem);
    }
    let pool = list.pool();
    // The foreign pin blocks the epoch, so nothing legitimate reclaims.
    assert!(pool.pending() > 0);
    let mut m = MemMetrics::default();
    let freed = pool.reclaim_ignoring_epochs(tid, &mut m);
    assert!(freed > 0);
    assert!(
        pool.unsafe_reclaims() > 0,
        "bypassing the epoch protocol under a live pin must be detected"
    );
    drop(foreign_guard);
}
