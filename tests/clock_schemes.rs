//! Correctness of every global-clock advancement scheme.
//!
//! The relaxed schemes (GV4 CAS, GV5 commit-skip, GV6 sampled) deliberately
//! allow *colliding* write versions and a *lagging* shared clock; these
//! tests hammer exact global invariants (counter exactness, balance
//! conservation) under real concurrency on every scheme × runtime
//! combination, so a serialisability hole in a scheme shows up as a lost
//! update or a broken snapshot.

use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{Addr, ClockScheme, MemConfig, TmMemory};
use rhtm_stm::Tl2Runtime;

fn mem_with_scheme(data_words: usize, scheme: ClockScheme) -> MemConfig {
    MemConfig {
        clock_scheme: scheme,
        ..MemConfig::with_data_words(data_words)
    }
}

/// TL2 pays the commit-time clock discipline on every writing commit — the
/// concurrent counter must stay exact under every scheme.
#[test]
fn tl2_concurrent_counter_exact_under_every_scheme() {
    for scheme in ClockScheme::ALL {
        let rt = Arc::new(Tl2Runtime::new(mem_with_scheme(4096, scheme)));
        let addr = rt.mem().alloc(1);
        let threads = 6;
        let per = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..per {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            rt.sim().nt_load(addr),
            (threads * per) as u64,
            "lost update under {scheme:?}"
        );
    }
}

/// Read-only transactions must see consistent snapshots even when write
/// versions collide: each transaction reads a pair of cells that writers
/// only ever update together, keeping their sum invariant.
#[test]
fn tl2_snapshots_stay_consistent_under_every_scheme() {
    for scheme in ClockScheme::ALL {
        let rt = Arc::new(Tl2Runtime::new(mem_with_scheme(4096, scheme)));
        // Two cells on different stripes, updated atomically: a+b == 1000.
        let a = rt.mem().alloc(64);
        let b = rt.mem().alloc(64);
        rt.sim().nt_store(a, 1_000);
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for i in 0..2_000u64 {
                        th.execute(|tx| {
                            let va = tx.read(a)?;
                            let vb = tx.read(b)?;
                            let delta = (i % 7).min(va);
                            tx.write(a, va - delta)?;
                            tx.write(b, vb + delta)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..2_000 {
                        let (va, vb) = th.execute(|tx| {
                            let va = tx.read(a)?;
                            let vb = tx.read(b)?;
                            Ok((va, vb))
                        });
                        assert_eq!(va + vb, 1_000, "torn snapshot under {scheme:?}");
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        let total = rt.sim().nt_load(a) + rt.sim().nt_load(b);
        assert_eq!(total, 1_000, "conservation broken under {scheme:?}");
    }
}

/// The RH1 cascade (fast-path + mixed slow-path + RH2 fallback) conserves
/// balances under every scheme, including with forced fallback pressure so
/// the scheme-sensitive RH2 commit paths actually run.
#[test]
fn rh1_bank_transfer_conserves_balance_under_every_scheme() {
    for scheme in ClockScheme::ALL {
        // A tiny write capacity pushes commits onto the RH2 / all-software
        // fallbacks, which are the paths that consult the clock scheme.
        let rt = Arc::new(RhRuntime::new(
            mem_with_scheme(8192, scheme),
            HtmConfig::with_capacity(64, 4),
            RhConfig::rh1_mixed(100),
        ));
        let accounts: Vec<Addr> = (0..16).map(|_| rt.mem().alloc(1)).collect();
        for &acct in &accounts {
            rt.sim().nt_store(acct, 500);
        }
        let accounts = Arc::new(accounts);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let rt = Arc::clone(&rt);
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..2_000usize {
                        let from = accounts[(k * 7 + i) % accounts.len()];
                        let to = accounts[(k * 13 + 3 * i + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let t = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, t + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = accounts.iter().map(|&a| rt.sim().nt_load(a)).sum();
        assert_eq!(total, 16 * 500, "balance lost under {scheme:?}");
    }
}

/// Stand-alone RH2 under every scheme: its slow-path commit samples the
/// scheme's version after locking, so collisions are exercised directly.
#[test]
fn rh2_concurrent_counter_exact_under_every_scheme() {
    for scheme in ClockScheme::ALL {
        let rt = Arc::new(RhRuntime::new(
            mem_with_scheme(4096, scheme),
            HtmConfig::default(),
            RhConfig::rh2(),
        ));
        let addr = rt.mem().alloc(1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..2_000 {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            rt.sim().nt_load(addr),
            8_000,
            "lost update under {scheme:?}"
        );
    }
}

/// The scheme is wired end-to-end: a runtime built from an `RhConfig`
/// override reports it from the shared memory's clock.
#[test]
fn scheme_propagates_from_config_to_memory() {
    for scheme in ClockScheme::ALL {
        let rt = RhRuntime::new(
            MemConfig::with_data_words(256),
            HtmConfig::default(),
            RhConfig::rh1_fast().with_clock_scheme(scheme),
        );
        assert_eq!(rt.mem().clock().scheme(), scheme);
    }
    // And MemConfig alone works when the RhConfig does not override.
    let mem = Arc::new(TmMemory::new(mem_with_scheme(256, ClockScheme::Gv4)));
    let sim = HtmSim::new(mem, HtmConfig::default());
    let rt = RhRuntime::with_sim(sim, RhConfig::rh1_fast());
    assert_eq!(rt.mem().clock().scheme(), ClockScheme::Gv4);
}
