//! Property tests for time-varying load phases and the composed scenario
//! pack: fuzzed schedule invariants, label round-trips, and per-seed
//! replay determinism of the new scenarios.
//!
//! The determinism tests run **single-threaded**: with concurrent
//! workers, abort/retry noise perturbs the read/write counters even for
//! identical key sequences, so only 1-thread counted runs are exact
//! replays.

use rhtm_workloads::{
    AlgoKind, DriverOpts, OpMix, PhasePlan, Scenario, StructureKind, TmSpec, WorkloadRng,
};

/// Deterministic splitmix64 stream for the fuzzed sweeps.
struct CaseRng(u64);

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Phase index implied by the schedule's weight prefix sums — the
/// reference model `PhasedSampler::phase_at` must agree with.
fn model_phase(plan: PhasePlan, progress: u8) -> usize {
    let schedule = plan.schedule();
    let mut acc = 0u32;
    for (i, p) in schedule.iter().enumerate() {
        acc += p.weight as u32;
        if (progress as u32) < acc {
            return i;
        }
    }
    schedule.len() - 1
}

#[test]
fn fuzzed_samplers_stay_in_range_and_match_the_phase_model() {
    let mut rng = CaseRng::new(0x10ad);
    for case in 0..300u64 {
        let plan = PhasePlan::ALL[rng.below(3) as usize];
        let key_space = 2 + rng.below(5_000);
        let threads = 1 + rng.below(4) as usize;
        let tid = rng.below(threads as u64) as usize;
        let mut sampler = plan.sampler(key_space, tid, threads);
        let mut keys = WorkloadRng::new(case);
        for _ in 0..200 {
            let progress = rng.below(130) as u8; // deliberately overshoots 100
            assert_eq!(
                sampler.phase_at(progress),
                model_phase(plan, progress),
                "{plan:?} at {progress}%"
            );
            let key = sampler.sample(&mut keys, progress);
            assert!(
                key < key_space,
                "{plan:?}: key {key} outside space {key_space}"
            );
        }
    }
}

#[test]
fn fuzzed_equal_seeds_replay_identical_key_streams() {
    let mut rng = CaseRng::new(0xd00d);
    for case in 0..100u64 {
        let plan = PhasePlan::ALL[rng.below(3) as usize];
        let key_space = 2 + rng.below(2_000);
        let threads = 1 + rng.below(4) as usize;
        let tid = rng.below(threads as u64) as usize;
        let mut a = plan.sampler(key_space, tid, threads);
        let mut b = plan.sampler(key_space, tid, threads);
        let mut ra = WorkloadRng::new(case ^ 0xABCD);
        let mut rb = WorkloadRng::new(case ^ 0xABCD);
        for op in 0..300u64 {
            let progress = (op * 100 / 300) as u8;
            assert_eq!(
                a.sample(&mut ra, progress),
                b.sample(&mut rb, progress),
                "{plan:?} diverged at op {op}"
            );
        }
    }
}

#[test]
fn phase_selection_is_monotone_in_progress() {
    for plan in PhasePlan::ALL {
        let sampler = plan.sampler(100, 0, 1);
        let mut last = 0;
        for progress in 0..=120u16 {
            let phase = sampler.phase_at(progress.min(255) as u8);
            assert!(
                phase >= last,
                "{plan:?}: phase went backwards at {progress}%"
            );
            assert!(phase < plan.schedule().len());
            last = phase;
        }
        assert_eq!(
            last,
            plan.schedule().len() - 1,
            "{plan:?}: the final phase must be reached"
        );
    }
}

#[test]
fn phase_plan_labels_round_trip_and_reject_near_misses() {
    for plan in PhasePlan::ALL {
        assert_eq!(PhasePlan::parse(plan.label()), Some(plan));
        assert_eq!(
            PhasePlan::parse(&format!("  {}  ", plan.label())),
            Some(plan)
        );
        assert_eq!(
            PhasePlan::parse(&plan.label().to_ascii_uppercase()),
            Some(plan)
        );
    }
    // Fuzzed near-misses: mutate one character of a valid label.
    let mut rng = CaseRng::new(0xbad_1abe1);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz-".chars().collect();
    for _ in 0..500 {
        let plan = PhasePlan::ALL[rng.below(3) as usize];
        let mut chars: Vec<char> = plan.label().chars().collect();
        let at = rng.below(chars.len() as u64) as usize;
        let replacement = alphabet[rng.below(alphabet.len() as u64) as usize];
        if chars[at] == replacement {
            continue;
        }
        chars[at] = replacement;
        let mutated: String = chars.into_iter().collect();
        assert_eq!(
            PhasePlan::parse(&mutated),
            None,
            "near-miss '{mutated}' must not parse"
        );
    }
}

#[test]
fn scenario_labels_round_trip_including_the_composed_pack() {
    for s in Scenario::all() {
        assert_eq!(
            Scenario::find(s.name).map(|f| f.name),
            Some(s.name),
            "{} must find itself",
            s.name
        );
        assert_eq!(
            Scenario::find(&s.name.to_ascii_uppercase()).map(|f| f.name),
            Some(s.name)
        );
        // The phases column round-trips: "none" for stationary
        // scenarios, a parseable plan label otherwise.
        match s.phases {
            None => assert_eq!(s.phases_label(), "none", "{}", s.name),
            Some(plan) => assert_eq!(PhasePlan::parse(s.phases_label()), Some(plan), "{}", s.name),
        }
    }
    for name in [
        "bank-transfer-uniform",
        "bank-transfer-zipf",
        "bank-analytics-scan",
        "bank-diurnal",
        "skiplist-flash-crowd",
        "skiplist-hot-migration",
    ] {
        let s = Scenario::find(name)
            .unwrap_or_else(|| panic!("composed-pack scenario '{name}' is not registered"));
        assert!(
            s.structure == StructureKind::Bank || s.phases.is_some(),
            "{name} is neither composed nor phased"
        );
    }
}

#[test]
fn composed_and_phased_scenarios_replay_deterministically_per_seed() {
    let spec = TmSpec::new(AlgoKind::Rh1Mixed(100));
    let pack: Vec<&Scenario> = Scenario::all()
        .iter()
        .filter(|s| s.structure == StructureKind::Bank || s.phases.is_some())
        .collect();
    assert!(pack.len() >= 6);
    for s in pack {
        let size = s.sized(256);
        for seed in [3u64, 17] {
            let opts = DriverOpts::counted_mix(1, OpMix::read_update(0), 120).with_seed(seed);
            let a = s.run_spec(&spec, size, &opts);
            let b = s.run_spec(&spec, size, &opts);
            assert_eq!(a.total_ops, 120, "{}", s.name);
            assert_eq!(a.total_ops, b.total_ops, "{}", s.name);
            assert_eq!(a.stats.commits(), b.stats.commits(), "{}", s.name);
            assert_eq!(
                a.stats.reads, b.stats.reads,
                "{} seed {seed}: read counts must replay",
                s.name
            );
            assert_eq!(
                a.stats.writes, b.stats.writes,
                "{} seed {seed}: write counts must replay",
                s.name
            );
            assert_eq!(a.key_dist, b.key_dist, "{}", s.name);
            assert_eq!(a.seed, seed, "{}", s.name);
        }
    }
}
