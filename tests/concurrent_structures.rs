//! Concurrent data-structure tests: the mutable transactional structures are
//! hammered from many threads on the hybrid runtimes and checked against
//! exact global invariants (element counts, sortedness, conservation).

use std::collections::HashSet;
use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;
use rhtm_workloads::mutable::{TxHashMap, TxSortedList};
use rhtm_workloads::{ConstantRbTree, OpKind, Workload, WorkloadRng};

fn rh1_runtime(data_words: usize, htm: HtmConfig) -> Arc<RhRuntime> {
    Arc::new(RhRuntime::new(
        MemConfig::with_data_words(data_words),
        htm,
        RhConfig::rh1_mixed(100),
    ))
}

#[test]
fn hashmap_disjoint_key_ranges_from_many_threads() {
    let rt = rh1_runtime(1 << 18, HtmConfig::default());
    let map = Arc::new(TxHashMap::new(Arc::clone(rt.sim()), 1024));
    let threads = 6;
    let per = 1_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                let base = t as u64 * 1_000_000;
                for i in 0..per {
                    assert_eq!(map.insert(&mut th, base + i, i), None);
                }
                // Delete the odd half again.
                for i in (1..per).step_by(2) {
                    assert_eq!(map.remove(&mut th, base + i), Some(i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut th = rt.register_thread();
    assert_eq!(map.len(&mut th), threads as u64 * per.div_ceil(2));
    assert_eq!(map.get(&mut th, 2_000_000 + 42 * 2), Some(84));
    assert_eq!(map.get(&mut th, 2_000_000 + 43), None);
}

#[test]
fn hashmap_contended_keys_keep_last_writer_wins_semantics() {
    let rt = rh1_runtime(1 << 18, HtmConfig::default());
    let map = Arc::new(TxHashMap::new(Arc::clone(rt.sim()), 64));
    let keys = 16u64;
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                let mut rng = WorkloadRng::new(t);
                for _ in 0..2_000 {
                    let key = rng.next_below(keys);
                    match rng.next_below(3) {
                        0 => {
                            map.insert(&mut th, key, t * 1_000 + key);
                        }
                        1 => {
                            map.remove(&mut th, key);
                        }
                        _ => {
                            // Any value observed must have been written for
                            // this exact key by some thread.
                            if let Some(v) = map.get(&mut th, key) {
                                assert_eq!(v % 1_000, key, "value {v} never written for key {key}");
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut th = rt.register_thread();
    assert!(map.len(&mut th) <= keys);
}

#[test]
fn sorted_list_remains_a_set_under_concurrent_insert_remove() {
    // Run the same stress on the default configuration and on a tiny
    // hardware capacity that forces the slow paths.
    for htm in [HtmConfig::default(), HtmConfig::with_capacity(6, 3)] {
        let rt = rh1_runtime(1 << 18, htm);
        let list = Arc::new(TxSortedList::new(Arc::clone(rt.sim())));
        let key_space = 96u64;
        let handles: Vec<_> = (0..5)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    let mut rng = WorkloadRng::new(t * 31 + 7);
                    let mut net = 0i64;
                    for _ in 0..1_500 {
                        let key = 1 + rng.next_below(key_space);
                        if rng.draw_percent(55) {
                            if list.insert(&mut th, key) {
                                net += 1;
                            }
                        } else if list.remove(&mut th, key) {
                            net -= 1;
                        }
                    }
                    net
                })
            })
            .collect();
        let mut net_inserts = 0i64;
        for h in handles {
            net_inserts += h.join().unwrap();
        }
        assert!(list.is_sorted_quiescent());
        let mut th = rt.register_thread();
        let snapshot = list.snapshot(&mut th);
        let unique: HashSet<_> = snapshot.iter().copied().collect();
        assert_eq!(unique.len(), snapshot.len(), "duplicate keys in the set");
        assert_eq!(
            snapshot.len() as i64,
            net_inserts,
            "set size must equal net successful inserts"
        );
        assert!(snapshot.iter().all(|&k| k >= 1 && k <= key_space));
    }
}

#[test]
fn constant_rbtree_shape_is_untouched_by_concurrent_updates() {
    let nodes = 4_096u64;
    let rt = rh1_runtime(
        ConstantRbTree::required_words(nodes) + 4096,
        HtmConfig::default(),
    );
    let tree = Arc::new(ConstantRbTree::new(Arc::clone(rt.sim()), nodes));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                let mut rng = WorkloadRng::new(t);
                for i in 0..2_000 {
                    let op = if i % 4 == 0 {
                        OpKind::Update
                    } else {
                        OpKind::Lookup
                    };
                    let key = rng.next_below(tree.key_space());
                    tree.run_op(&mut th, &mut rng, op, key);
                }
                th.stats().commits()
            })
        })
        .collect();
    let mut commits = 0;
    for h in handles {
        commits += h.join().unwrap();
    }
    assert_eq!(commits, 6 * 2_000);
    assert_eq!(
        tree.count_reachable(),
        nodes,
        "updates must never change the shape"
    );
}

#[test]
fn rh2_standalone_also_supports_the_mutable_structures() {
    let rt = Arc::new(RhRuntime::new(
        MemConfig::with_data_words(1 << 17),
        HtmConfig::default(),
        RhConfig::rh2(),
    ));
    let map = Arc::new(TxHashMap::new(Arc::clone(rt.sim()), 128));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                for i in 0..800u64 {
                    map.insert(&mut th, t * 10_000 + i, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut th = rt.register_thread();
    assert_eq!(map.len(&mut th), 3_200);
}
