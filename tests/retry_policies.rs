//! The retry-policy layer, end to end.
//!
//! * **Seed equivalence** — with the default [`PaperDefault`] policy every
//!   runtime must reproduce the pre-refactor retry loops *bit-identically*:
//!   the golden `TxStats` below were captured from the seed implementation
//!   (hardcoded thresholds, inlined `Backoff` + counter logic) on fixed-seed
//!   single-threaded workloads before the loops were routed through
//!   [`RetryPolicy`].  Any drift in decision order, RNG draw sites or
//!   counter semantics shows up as a mismatch.
//! * **Budget semantics** — a retry budget of `N` means `N` *extra*
//!   attempts (`N + 1` total) at a commit-time decision site, for both the
//!   RH1 commit transaction and the RH2 write-back (the seed's `>` vs `>=`
//!   idioms unified).
//! * **Invariant stress** — every built-in policy, on every demoting
//!   runtime, under fallback pressure, must conserve the bank-transfer
//!   balance: a policy can change *when* paths give up, never *whether* the
//!   outcome is serialisable.
//!
//! [`PaperDefault`]: rhtm_api::retry::PaperDefault
//! [`RetryPolicy`]: rhtm_api::RetryPolicy

use std::sync::{Arc, Mutex};

use rhtm_api::retry::PaperDefault;
use rhtm_api::{
    AttemptContext, PathClass, RetryDecision, RetryPolicy, RetryPolicyHandle, RetryRng, TmRuntime,
    TmThread, TxStats, Txn,
};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime, HtmRuntimeConfig};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{Addr, MemConfig};
use rhtm_stm::{Tl2Config, Tl2Runtime};

// ---------------------------------------------------------------------
// Shared fixed-seed workload (identical to the pre-refactor capture run)
// ---------------------------------------------------------------------

fn drive<RT: TmRuntime>(rt: &RT, accounts: &[Addr], wide: bool) -> TxStats {
    let mut th = rt.register_thread();
    for k in 0..2_000usize {
        if wide {
            // One transaction updating 8 spread accounts: overflows tiny
            // write capacities, walking the full cascade deterministically.
            th.execute(|tx| {
                for j in 0..8 {
                    let a = accounts[(k * 5 + j * 3 + 1) % accounts.len()];
                    let v = tx.read(a)?;
                    tx.write(a, v + 1)?;
                }
                Ok(())
            });
        } else {
            let from = accounts[(k * 7 + 1) % accounts.len()];
            let to = accounts[(k * 13 + 5) % accounts.len()];
            if from == to {
                continue;
            }
            th.execute(|tx| {
                let f = tx.read(from)?;
                if f == 0 {
                    return Ok(());
                }
                let t = tx.read(to)?;
                tx.write(from, f - 1)?;
                tx.write(to, t + 1)?;
                Ok(())
            });
        }
    }
    th.stats().clone()
}

fn alloc_accounts<RT: TmRuntime>(rt: &RT) -> Vec<Addr> {
    let accounts: Vec<Addr> = (0..16).map(|_| rt.mem().alloc(64)).collect();
    for &a in &accounts {
        rt.mem().heap().store(a, 500);
    }
    accounts
}

fn spurious() -> HtmConfig {
    HtmConfig::default()
        .with_spurious_abort_rate(0.3)
        .with_seed(42)
}

fn mem() -> MemConfig {
    MemConfig::with_data_words(8192)
}

/// The golden numbers captured from the seed loops (see module docs).
struct Golden {
    commits_by_path: [u64; 3],
    aborts_by_cause: [u64; 8],
    reads: u64,
    writes: u64,
    htm_commits: u64,
    htm_aborts: u64,
}

fn assert_golden(name: &str, stats: &TxStats, golden: &Golden) {
    assert_eq!(
        stats.commits_by_path, golden.commits_by_path,
        "{name}: path"
    );
    assert_eq!(
        stats.aborts_by_cause, golden.aborts_by_cause,
        "{name}: cause"
    );
    assert_eq!(stats.reads, golden.reads, "{name}: reads");
    assert_eq!(stats.writes, golden.writes, "{name}: writes");
    assert_eq!(stats.htm_commits, golden.htm_commits, "{name}: htm_commits");
    assert_eq!(stats.htm_aborts, golden.htm_aborts, "{name}: htm_aborts");
}

// ---------------------------------------------------------------------
// Seed equivalence: PaperDefault == the pre-refactor loops, bit for bit
// ---------------------------------------------------------------------

#[test]
fn paper_default_matches_the_seed_rh_loops_bit_for_bit() {
    // RH1 Mixed 100: spurious aborts exercise the Mix demotion every time.
    let rt = RhRuntime::new(mem(), spurious(), RhConfig::rh1_mixed(100).with_seed(7));
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "rh1_mixed100",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1232, 518, 0],
            aborts_by_cause: [0, 0, 0, 518, 0, 260, 0, 0],
            reads: 4870,
            writes: 4536,
            htm_commits: 1750,
            htm_aborts: 186,
        },
    );

    // RH1 Mixed 40: the probabilistic Mix draw — same RNG, same draw
    // sites, same decisions as the seed's inlined `next_random() % 100`.
    let rt = RhRuntime::new(mem(), spurious(), RhConfig::rh1_mixed(40).with_seed(7));
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "rh1_mixed40",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1504, 246, 0],
            aborts_by_cause: [0, 0, 0, 617, 0, 156, 0, 0],
            reads: 4912,
            writes: 4734,
            htm_commits: 1750,
            htm_aborts: 87,
        },
    );

    // RH1 Fast: mix 0 — every spurious abort retries in hardware.
    let rt = RhRuntime::new(mem(), spurious(), RhConfig::rh1_fast().with_seed(7));
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "rh1_fast",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1750, 0, 0],
            aborts_by_cause: [0, 0, 0, 704, 0, 0, 0, 0],
            reads: 4908,
            writes: 4908,
            htm_commits: 1750,
            htm_aborts: 0,
        },
    );

    // Stand-alone RH2.
    let rt = RhRuntime::new(mem(), spurious(), RhConfig::rh2().with_seed(7));
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "rh2",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1232, 518, 0],
            aborts_by_cause: [0, 0, 0, 518, 0, 0, 0, 0],
            reads: 4536,
            writes: 4536,
            htm_commits: 1750,
            htm_aborts: 186,
        },
    );

    // Full-cascade walk: a 4-line write capacity forces fast-path →
    // mixed slow-path → RH2 commit → all-software write-back on every
    // wide transaction.
    let rt = RhRuntime::new(
        mem(),
        HtmConfig::with_capacity(4096, 4)
            .with_spurious_abort_rate(0.3)
            .with_seed(42),
        RhConfig::rh1_mixed(100).with_seed(7),
    );
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "rh1_cascade_wide",
        &drive(&rt, &accounts, true),
        &Golden {
            commits_by_path: [0, 0, 2000],
            aborts_by_cause: [0, 2000, 0, 0, 0, 0, 0, 0],
            reads: 22000,
            writes: 22000,
            htm_commits: 0,
            htm_aborts: 4000,
        },
    );
}

#[test]
fn paper_default_matches_the_seed_baseline_loops_bit_for_bit() {
    // Standard HyTM with the default 4-retry budget: a handful of
    // transactions exhaust it against spurious aborts and demote.
    let rt = StdHytmRuntime::new(mem(), spurious(), StdHytmConfig::default());
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "std_hytm_default",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1747, 0, 3],
            aborts_by_cause: [0, 0, 0, 703, 0, 3, 0, 0],
            reads: 4909,
            writes: 4906,
            htm_commits: 1747,
            htm_aborts: 703,
        },
    );

    // Standard HyTM hardware-only: unbounded budget, never demotes.
    let rt = StdHytmRuntime::new(mem(), spurious(), StdHytmConfig::hardware_only());
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "std_hytm_hw_only",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1750, 0, 0],
            aborts_by_cause: [0, 0, 0, 704, 0, 0, 0, 0],
            reads: 4908,
            writes: 4908,
            htm_commits: 1750,
            htm_aborts: 704,
        },
    );

    // Pure HTM: no fallback, retry forever.
    let rt = HtmRuntime::new(mem(), spurious());
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "pure_htm",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [1750, 0, 0],
            aborts_by_cause: [0, 0, 0, 704, 0, 0, 0, 0],
            reads: 4908,
            writes: 4908,
            htm_commits: 1750,
            htm_aborts: 704,
        },
    );

    // TL2: single-threaded software, nothing ever aborts.
    let rt = Tl2Runtime::new(mem());
    let accounts = alloc_accounts(&rt);
    assert_golden(
        "tl2",
        &drive(&rt, &accounts, false),
        &Golden {
            commits_by_path: [0, 0, 1750],
            aborts_by_cause: [0, 0, 0, 0, 0, 0, 0, 0],
            reads: 3500,
            writes: 3500,
            htm_commits: 0,
            htm_aborts: 0,
        },
    );
}

#[test]
fn explicit_paper_default_equals_the_default_config() {
    // Spelling the policy out must be indistinguishable from the default.
    let run = |config: RhConfig| {
        let rt = RhRuntime::new(mem(), spurious(), config);
        let accounts = alloc_accounts(&rt);
        drive(&rt, &accounts, false)
    };
    let implicit = run(RhConfig::rh1_mixed(100).with_seed(7));
    let explicit = run(RhConfig::rh1_mixed(100)
        .with_seed(7)
        .with_retry_policy(RetryPolicyHandle::paper_default()));
    assert_eq!(implicit, explicit);
}

// ---------------------------------------------------------------------
// Budget semantics: N = max extra attempts, at both commit-time sites
// ---------------------------------------------------------------------

/// A recording wrapper: decides like [`PaperDefault`] and logs every
/// context it saw, so tests can assert what the runtimes actually ask.
#[derive(Clone, Debug)]
struct Recording {
    seen: Arc<Mutex<Vec<AttemptContext>>>,
}

impl Recording {
    fn new() -> Recording {
        Recording {
            seen: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl RetryPolicy for Recording {
    fn label(&self) -> &'static str {
        "recording"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        self.seen.lock().unwrap().push(*ctx);
        PaperDefault.decide(ctx, rng)
    }
}

#[test]
fn commit_sites_never_exceed_budget_plus_one_attempts() {
    // Heavy spurious pressure on the RH1 commit-time hardware transaction:
    // the policy must be consulted at most `budget + 1` times per commit
    // (the budget counts *extra* attempts), after which the decision
    // demotes and the attempt counter restarts.
    for budget in [0u32, 2, 5] {
        let recorder = Recording::new();
        let config = RhConfig {
            commit_htm_retries: budget,
            writeback_htm_retries: budget,
            always_slow: true, // every transaction exercises the commit HTM
            ..RhConfig::rh1_mixed(100)
        }
        .with_retry_policy(RetryPolicyHandle::new(recorder.clone()));
        let rt = RhRuntime::new(
            mem(),
            HtmConfig::default()
                .with_spurious_abort_rate(0.6)
                .with_seed(3),
            config,
        );
        let accounts = alloc_accounts(&rt);
        let stats = drive(&rt, &accounts, false);
        assert!(stats.commits() > 0);

        let seen = recorder.seen.lock().unwrap();
        let commit_attempts: Vec<u32> = seen
            .iter()
            .filter(|c| c.path == PathClass::CommitHtm)
            .map(|c| c.attempt)
            .collect();
        assert!(
            !commit_attempts.is_empty(),
            "budget {budget}: commit site never consulted"
        );
        let max_seen = *commit_attempts.iter().max().unwrap();
        assert!(
            max_seen <= budget + 1,
            "budget {budget}: saw attempt {max_seen} (> budget + 1)"
        );
        // Every consultation carried the configured budget.
        assert!(seen
            .iter()
            .filter(|c| c.path == PathClass::CommitHtm)
            .all(|c| c.retry_budget == budget));
        // And with a non-zero budget the retries actually happen: some
        // consultation must reach attempt == budget + 1 under 60% spurious
        // pressure over 2000 transactions.
        if budget <= 2 {
            assert_eq!(
                max_seen,
                budget + 1,
                "budget {budget}: demotion threshold never reached"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Invariant stress: every policy, every demoting runtime, real threads
// ---------------------------------------------------------------------

fn bank_stress<RT: TmRuntime + Send + Sync + 'static>(rt: Arc<RT>, label: &str) {
    let accounts: Vec<Addr> = (0..16).map(|_| rt.mem().alloc(1)).collect();
    for &a in &accounts {
        rt.mem().heap().store(a, 500);
    }
    let accounts = Arc::new(accounts);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let rt = Arc::clone(&rt);
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                for k in 0..1_500usize {
                    let from = accounts[(k * 7 + i) % accounts.len()];
                    let to = accounts[(k * 13 + 3 * i + 1) % accounts.len()];
                    if from == to {
                        continue;
                    }
                    th.execute(|tx| {
                        let f = tx.read(from)?;
                        if f == 0 {
                            return Ok(());
                        }
                        let t = tx.read(to)?;
                        tx.write(from, f - 1)?;
                        tx.write(to, t + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = accounts.iter().map(|&a| rt.mem().heap().load(a)).sum();
    assert_eq!(total, 16 * 500, "balance lost: {label}");
}

#[test]
fn every_policy_conserves_balance_on_the_rh_cascade() {
    for policy in RetryPolicyHandle::builtin() {
        // A tiny write capacity pushes commits onto the RH2 / all-software
        // fallbacks, so the policy's demotion decisions actually fire.
        let rt = Arc::new(RhRuntime::new(
            mem(),
            HtmConfig::with_capacity(64, 4),
            RhConfig::rh1_mixed(100).with_retry_policy(policy.clone()),
        ));
        bank_stress(rt, &format!("RH1 Mixed 100 × {}", policy.label()));

        let rt = Arc::new(RhRuntime::new(
            MemConfig::with_data_words(4096),
            HtmConfig::default(),
            RhConfig::rh2().with_retry_policy(policy.clone()),
        ));
        bank_stress(rt, &format!("RH2 × {}", policy.label()));
    }
}

#[test]
fn every_policy_conserves_balance_on_the_baselines() {
    for policy in RetryPolicyHandle::builtin() {
        // A zero hardware-retry budget maximises demotion traffic.
        let rt = Arc::new(StdHytmRuntime::new(
            mem(),
            HtmConfig::default(),
            StdHytmConfig {
                hardware_only: false,
                hw_retries: 0,
                retry_policy: policy.clone(),
            },
        ));
        bank_stress(rt, &format!("Standard HyTM × {}", policy.label()));

        let rt = Arc::new(HtmRuntime::with_config(
            MemConfig::with_data_words(4096),
            HtmConfig::default(),
            HtmRuntimeConfig::default().with_retry_policy(policy.clone()),
        ));
        bank_stress(rt, &format!("HTM × {}", policy.label()));

        let rt = Arc::new(Tl2Runtime::with_config(
            MemConfig::with_data_words(4096),
            Tl2Config::default().with_retry_policy(policy.clone()),
        ));
        bank_stress(rt, &format!("TL2 × {}", policy.label()));
    }
}

// ---------------------------------------------------------------------
// Behavioural differences between policies actually materialise
// ---------------------------------------------------------------------

#[test]
fn aggressive_never_demotes_where_paper_default_does() {
    // Under pure spurious pressure with a zero budget, PaperDefault's
    // Standard HyTM demotes to software immediately; Aggressive stays in
    // hardware for every commit.
    let run = |policy: RetryPolicyHandle| {
        let rt = StdHytmRuntime::new(
            mem(),
            spurious(),
            StdHytmConfig {
                hardware_only: false,
                hw_retries: 0,
                retry_policy: policy,
            },
        );
        let accounts = alloc_accounts(&rt);
        drive(&rt, &accounts, false)
    };
    let paper = run(RetryPolicyHandle::paper_default());
    let aggressive = run(RetryPolicyHandle::aggressive());
    assert!(
        paper.commits_on(rhtm_api::PathKind::Software) > 0,
        "paper-default should demote with a zero budget"
    );
    assert_eq!(
        aggressive.commits_on(rhtm_api::PathKind::Software),
        0,
        "aggressive must never demote on contention"
    );
    assert_eq!(aggressive.commits(), paper.commits());
}

#[test]
fn protected_instructions_survive_every_policy() {
    // The hardware-limitation clamp: even a policy that never demotes by
    // itself must reach the software path for a protected instruction.
    for policy in RetryPolicyHandle::builtin() {
        let rt = RhRuntime::new(
            mem(),
            HtmConfig::default(),
            RhConfig::rh1_fast().with_retry_policy(policy.clone()),
        );
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        let v = th.execute(|tx| {
            tx.protected_instruction()?;
            let v = tx.read(addr)?;
            tx.write(addr, v + 3)?;
            Ok(v + 3)
        });
        assert_eq!(v, 3, "{}", policy.label());
    }
}
