//! Golden-TxStats bit-identity tests.
//!
//! The PR-7 speed pass (generation-stamped set clears, allocation-free
//! commits, read-set dedup, write-set fast-miss filter, cache-line
//! padding) must be **observationally identical** to the code it replaces:
//! same commits and aborts per path, same abort causes, same final memory.
//! Each test below drives one algorithm through a deterministic
//! single-threaded workload with injected spurious/forced aborts and a
//! tiny hardware capacity (so every fallback path runs), then compares a
//! fingerprint of the resulting [`TxStats`] and memory against a golden
//! value captured **before** the optimizations landed.
//!
//! If an intentional behavior change ever invalidates a golden, recapture
//! with:
//!
//! ```text
//! cargo test --release --test golden_stats -- --ignored --nocapture print_goldens
//! ```
//!
//! and paste the printed table over [`GOLDENS`] — but for a pure
//! performance PR the values must not move.

use std::sync::Arc;

use rhtm_api::{AbortCause, DynThreadExt, PathKind};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{Addr, MemConfig, TmMemory};
use rhtm_workloads::{AlgoKind, WorkloadRng};

/// Cells live one per simulated cache line so the wide transactions
/// genuinely overflow the 8-line hardware capacity below.
const CELLS: usize = 64;
const ROUNDS: usize = 300;

/// The golden fingerprints, captured on the pre-optimization hot paths
/// (commit `013a6bf`) via `print_goldens`.  FIGURE_SET plus RH2 so every
/// software commit path in the tree is pinned.
const GOLDENS: &[(&str, &str)] = &[
    ("htm", "commits=300 aborts=88 htm_commits=300 htm_aborts=88 reads=4091 writes=798 hw_fast=300 mixed_slow=0 software=0 Conflict=0 Capacity=0 Explicit=0 Spurious=17 Forced=71 Validation=0 Locked=0 Unsupported=0 mem=0xca22f16c7f3f52ab"),
    ("standard-hytm", "commits=300 aborts=291 htm_commits=75 htm_aborts=245 reads=6885 writes=2789 hw_fast=75 mixed_slow=0 software=225 Conflict=0 Capacity=225 Explicit=0 Spurious=3 Forced=17 Validation=46 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
    ("tl2", "commits=300 aborts=0 htm_commits=0 htm_aborts=0 reads=5098 writes=2023 hw_fast=0 mixed_slow=0 software=300 Conflict=0 Capacity=0 Explicit=0 Spurious=0 Forced=0 Validation=0 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
    ("rh1-fast", "commits=300 aborts=268 htm_commits=150 htm_aborts=150 reads=7581 writes=3069 hw_fast=150 mixed_slow=75 software=75 Conflict=0 Capacity=150 Explicit=0 Spurious=9 Forced=43 Validation=66 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
    ("rh1-mixed-10", "commits=300 aborts=269 htm_commits=150 htm_aborts=151 reads=7555 writes=3072 hw_fast=145 mixed_slow=80 software=75 Conflict=0 Capacity=150 Explicit=0 Spurious=6 Forced=47 Validation=66 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
    ("rh1-mixed-100", "commits=300 aborts=252 htm_commits=150 htm_aborts=151 reads=7157 writes=3051 hw_fast=114 mixed_slow=111 software=75 Conflict=0 Capacity=150 Explicit=0 Spurious=7 Forced=29 Validation=66 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
    ("rh2", "commits=300 aborts=244 htm_commits=150 htm_aborts=79 reads=8586 writes=2661 hw_fast=56 mixed_slow=169 software=75 Conflict=0 Capacity=225 Explicit=0 Spurious=3 Forced=16 Validation=0 Locked=0 Unsupported=0 mem=0x367604fdaf389eab"),
];

fn golden_kinds() -> Vec<AlgoKind> {
    let mut kinds: Vec<AlgoKind> = AlgoKind::FIGURE_SET.to_vec();
    kinds.push(AlgoKind::Rh2);
    kinds
}

/// Widths of the wide-writer and read-only-scan transactions for `kind`.
///
/// Pure HTM has no software fallback (`can_demote` is clamped off), so an
/// over-capacity transaction would retry forever; its shapes stay within
/// the 8-line hardware budget.  Every other algorithm gets shapes that
/// deliberately overflow it, driving the fallback cascades.
fn shapes_for(kind: AlgoKind) -> (usize, usize) {
    match kind {
        AlgoKind::Htm => (5, 6),
        _ => (24, 12),
    }
}

/// Runs the deterministic workload on `kind` and fingerprints the result.
///
/// The workload interleaves four transaction shapes chosen to exercise
/// every optimized path: two-cell increments (short commits), wide
/// writers (capacity aborts, fallback cascades, large write-set sort),
/// duplicate-heavy scans (read-set dedup) and read-only scans (read-only
/// commit fast path).
fn fingerprint(kind: AlgoKind) -> String {
    let (wide, scan) = shapes_for(kind);
    let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(4096)));
    let sim = HtmSim::new(
        mem,
        HtmConfig::with_capacity(8, 8)
            .with_spurious_abort_rate(0.05)
            .with_forced_abort_ratio(0.2)
            .with_seed(0xC0FFEE),
    );
    // One cell per cache line (alloc in line-sized chunks).
    let cells: Vec<Addr> = (0..CELLS).map(|_| sim.mem().alloc(8)).collect();
    let rt = kind.instantiate_dyn(Arc::clone(&sim));
    let mut th = rt.register_dyn();
    let mut rng = WorkloadRng::new(0x5EED_7007);

    for round in 0..ROUNDS {
        match round % 4 {
            0 => {
                // Short read-modify-write over two distinct cells.
                let a = cells[rng.next_below(CELLS as u64) as usize];
                let b = cells[rng.next_below(CELLS as u64) as usize];
                th.run(|tx| {
                    let va = tx.read(a)?;
                    tx.write(a, va.wrapping_add(1))?;
                    if a != b {
                        let vb = tx.read(b)?;
                        tx.write(b, vb ^ 0x2b)?;
                    }
                    Ok(())
                });
            }
            1 => {
                // Wide writer over distinct lines — past the 8-line
                // hardware write capacity for every fallback-capable
                // algorithm, forcing the cascade and a large commit-time
                // stripe sort.
                let start = rng.next_below(CELLS as u64) as usize;
                th.run(|tx| {
                    for i in 0..wide {
                        let c = cells[(start + i * 5) % CELLS];
                        let v = tx.read(c)?;
                        tx.write(c, v.wrapping_add(i as u64 + 1))?;
                    }
                    Ok(())
                });
            }
            2 => {
                // Duplicate-heavy scan: 30 reads over only 6 distinct
                // cells, then one write keyed off the sum.
                let base = rng.next_below(CELLS as u64) as usize;
                let out = cells[(base + 7) % CELLS];
                th.run(|tx| {
                    let mut sum = 0u64;
                    for i in 0..30 {
                        sum = sum.wrapping_add(tx.read(cells[(base + i % 6) % CELLS])?);
                    }
                    tx.write(out, sum)
                });
            }
            _ => {
                // Read-only scan (read-only commit path).
                let base = rng.next_below(CELLS as u64) as usize;
                th.run(|tx| {
                    let mut acc = 0u64;
                    for i in 0..scan {
                        acc = acc.wrapping_add(tx.read(cells[(base + i) % CELLS])?);
                    }
                    std::hint::black_box(acc);
                    Ok(())
                });
            }
        }
    }

    let stats = th.stats();
    let mut fp = format!(
        "commits={} aborts={} htm_commits={} htm_aborts={} reads={} writes={}",
        stats.commits(),
        stats.aborts(),
        stats.htm_commits,
        stats.htm_aborts,
        stats.reads,
        stats.writes
    );
    for path in PathKind::ALL {
        fp.push_str(&format!(" {}={}", path.json_key(), stats.commits_on(path)));
    }
    for cause in AbortCause::ALL {
        fp.push_str(&format!(" {:?}={}", cause, stats.aborts_for(cause)));
    }
    let checksum = cells.iter().enumerate().fold(0u64, |acc, (i, &c)| {
        acc.rotate_left(7)
            .wrapping_add(sim.mem().heap().load(c))
            .wrapping_add(i as u64)
    });
    fp.push_str(&format!(" mem={checksum:#018x}"));
    fp
}

fn golden_for(kind: AlgoKind) -> &'static str {
    let slug = kind.slug();
    GOLDENS
        .iter()
        .find(|(s, _)| *s == slug)
        .unwrap_or_else(|| panic!("no golden recorded for {slug}"))
        .1
}

#[test]
fn figure_set_and_rh2_match_their_goldens() {
    for kind in golden_kinds() {
        assert_eq!(
            fingerprint(kind),
            golden_for(kind),
            "{} drifted from its golden TxStats fingerprint — the hot-path \
             change is observable, not a pure optimization",
            kind.slug()
        );
    }
}

#[test]
fn fingerprint_is_deterministic() {
    // The goldens are only meaningful if the harness itself is stable.
    assert_eq!(fingerprint(AlgoKind::Tl2), fingerprint(AlgoKind::Tl2));
    assert_eq!(
        fingerprint(AlgoKind::Rh1Mixed(100)),
        fingerprint(AlgoKind::Rh1Mixed(100))
    );
}

/// Prints the current fingerprints in `GOLDENS` table form (see the module
/// docs for the capture command).
#[test]
#[ignore = "golden capture helper, run with --ignored --nocapture"]
fn print_goldens() {
    for kind in golden_kinds() {
        println!("    ({:?}, \"{}\"),", kind.slug(), fingerprint(kind));
    }
}
