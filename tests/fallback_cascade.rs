//! Integration tests of the RH1 → RH2 → all-software fallback cascade under
//! adversarial hardware configurations, including concurrency across the
//! mode switches.

use std::sync::Arc;

use rhtm_api::{AbortCause, PathKind, TmRuntime, TmThread, TxStats, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;

fn sum_region(rt: &RhRuntime, base: rhtm_mem::Addr, words: usize) -> u64 {
    (0..words).map(|i| rt.sim().nt_load(base.offset(i))).sum()
}

#[test]
fn capacity_overflow_commits_on_the_mixed_slow_path() {
    let rt = RhRuntime::new(
        MemConfig::with_data_words(64 * 1024),
        HtmConfig::with_capacity(8, 8),
        RhConfig::rh1_mixed(100),
    );
    let base = rt.mem().alloc(16 * 1024);
    let mut th = rt.register_thread();
    for round in 1..=50u64 {
        th.execute(|tx| {
            // Read 32 distinct lines (4x the fast-path's budget), write one.
            let mut sum = 0;
            for i in 0..32 {
                sum += tx.read(base.offset(i * 8))?;
            }
            tx.write(base.offset(((round % 32) * 8) as usize), sum + round)?;
            Ok(())
        });
    }
    let stats = th.stats();
    assert_eq!(stats.commits(), 50);
    assert_eq!(
        stats.commits_on(PathKind::HardwareFast),
        0,
        "cannot fit in hardware"
    );
    assert!(stats.commits_on(PathKind::MixedSlow) > 0);
    assert!(stats.aborts_for(AbortCause::Capacity) >= 50);
}

#[test]
fn oversized_write_sets_reach_the_all_software_path() {
    // Write capacity of 4 lines: even the RH2 hardware write-back (which
    // only writes the data) overflows for 16-line write sets, forcing the
    // pure software write-back under the all-software switch.
    let rt = RhRuntime::new(
        MemConfig::with_data_words(64 * 1024),
        HtmConfig::with_capacity(256, 4),
        RhConfig::rh1_mixed(100),
    );
    let base = rt.mem().alloc(16 * 1024);
    let mut th = rt.register_thread();
    for round in 1..=20u64 {
        th.execute(|tx| {
            for i in 0..16 {
                tx.write(base.offset(i * 8), round)?;
            }
            Ok(())
        });
    }
    let stats = th.stats();
    assert_eq!(stats.commits(), 20);
    assert!(
        stats.commits_on(PathKind::Software) > 0,
        "wide write-sets must fall through to the all-software write-back: {stats:?}"
    );
    // The final state reflects the last round everywhere.
    for i in 0..16 {
        assert_eq!(rt.sim().nt_load(base.offset(i * 8)), 20);
    }
}

#[test]
fn fallback_counters_return_to_zero_when_quiescent() {
    let rt = RhRuntime::new(
        MemConfig::with_data_words(32 * 1024),
        HtmConfig::with_capacity(4, 2),
        RhConfig::rh1_mixed(100),
    );
    let base = rt.mem().alloc(8 * 1024);
    let mut th = rt.register_thread();
    for round in 0..200u64 {
        th.execute(|tx| {
            let mut sum = 0;
            for i in 0..12 {
                sum += tx.read(base.offset(i * 8))?;
            }
            for i in 0..8 {
                tx.write(base.offset((i + 16) * 8), sum + round)?;
            }
            Ok(())
        });
    }
    let fb = rt.fallback_state();
    assert_eq!(fb.rh2_fallback_count(rt.sim()), 0);
    assert_eq!(fb.all_software_count(rt.sim()), 0);
}

#[test]
fn concurrent_threads_survive_mode_switches_without_losing_updates() {
    // Two populations: small transactions that prefer the fast path, and
    // large ones that constantly push the runtime through the fallback
    // cascade.  Every increment must survive.
    let rt = Arc::new(RhRuntime::new(
        MemConfig::with_data_words(128 * 1024),
        HtmConfig::with_capacity(16, 4),
        RhConfig::rh1_mixed(100),
    ));
    let small_cells = rt.mem().alloc(64);
    let big_region = rt.mem().alloc(32 * 1024);

    let mut handles = Vec::new();
    for t in 0..4 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            let mut th = rt.register_thread();
            for k in 0..3_000usize {
                let cell = small_cells.offset((k * 7 + t) % 64);
                th.execute(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)?;
                    Ok(())
                });
            }
            3_000u64
        }));
    }
    for t in 0..3 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            let mut th = rt.register_thread();
            for k in 0..300usize {
                th.execute(|tx| {
                    // Wide writer: 24 lines written, exceeding both the
                    // fast-path and the RH2 write-back budget.
                    for i in 0..24 {
                        let addr = big_region.offset((t * 4096) + (k % 8) * 512 + i * 8);
                        let v = tx.read(addr)?;
                        tx.write(addr, v + 1)?;
                    }
                    Ok(())
                });
            }
            0u64
        }));
    }
    let mut small_expected = 0;
    for h in handles {
        small_expected += h.join().unwrap();
    }
    assert_eq!(sum_region(&rt, small_cells, 64), small_expected);
    // Each big writer incremented 24 cells 300 times.
    assert_eq!(sum_region(&rt, big_region, 32 * 1024), 3 * 300 * 24);
    let fb = rt.fallback_state();
    assert_eq!(fb.rh2_fallback_count(rt.sim()), 0);
    assert_eq!(fb.all_software_count(rt.sim()), 0);
}

#[test]
fn protected_instructions_commit_exactly_once_under_concurrency() {
    let rt = Arc::new(RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        RhConfig::rh1_fast(),
    ));
    let counter = rt.mem().alloc(1);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                let mut th = rt.register_thread();
                let mut stats = TxStats::new(false);
                for _ in 0..2_000 {
                    th.execute(|tx| {
                        tx.protected_instruction()?;
                        let v = tx.read(counter)?;
                        tx.write(counter, v + 1)?;
                        Ok(())
                    });
                }
                stats.merge(th.stats());
                stats
            })
        })
        .collect();
    let mut merged = TxStats::new(false);
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    assert_eq!(rt.sim().nt_load(counter), 12_000);
    assert_eq!(merged.commits_on(PathKind::HardwareFast), 0);
    assert_eq!(merged.commits(), 12_000);
}
