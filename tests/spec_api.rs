//! The `TmSpec` surface, end to end.
//!
//! * **Label round-trip property** — every spec label over the whole
//!   grammar (all `AlgoKind`s *including every* `Rh1Mixed(p)` percentage ×
//!   clock schemes × builtin retry policies) must round-trip
//!   `format → parse → format` bit-identically, and near-miss labels must
//!   be rejected instead of silently defaulted.
//! * **Golden stats** — a runtime constructed through `TmSpec` must
//!   produce `TxStats` identical to the same runtime assembled by hand
//!   from `RhConfig` / `Tl2Config` / `StdHytmConfig` / `HtmRuntimeConfig`
//!   for a fixed seeded workload: the spec resolution layer may not drift
//!   the configuration silently.
//!
//! Like the rest of the workspace's property tests, the sweep is driven by
//! a deterministic splitmix64 generator (offline build, no `proptest`);
//! failures print the inputs that reproduce them.

use std::sync::Arc;

use rhtm_api::RetryPolicyHandle;
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime, HtmRuntimeConfig, HtmSim};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{ClockScheme, MemConfig, TmMemory};
use rhtm_stm::{MutexRuntime, Tl2Config, Tl2Runtime};
use rhtm_workloads::{
    run_benchmark, AlgoKind, BenchResult, ConstantHashTable, DriverOpts, OpMix, TmSpec,
};

/// Deterministic splitmix64 stream for the fuzzed near-miss sweep.
struct CaseRng(u64);

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Every algorithm kind in the grammar, including *all* 101 mixed
/// percentages.
fn every_algo() -> Vec<AlgoKind> {
    let mut kinds = vec![
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Slow,
        AlgoKind::Rh2,
        AlgoKind::GlobalLock,
    ];
    kinds.extend((0..=100).map(AlgoKind::Rh1Mixed));
    kinds
}

// ---------------------------------------------------------------------
// Property: format → parse → format is bit-identical over the grammar
// ---------------------------------------------------------------------

#[test]
fn every_spec_label_round_trips_bit_identically() {
    let mut checked = 0usize;
    for kind in every_algo() {
        for scheme in ClockScheme::ALL {
            for policy in RetryPolicyHandle::builtin() {
                let spec = TmSpec::new(kind).clock(scheme).retry(policy.clone());
                let label = spec.label();
                let reparsed =
                    TmSpec::parse(&label).unwrap_or_else(|| panic!("{label:?} must parse"));
                assert_eq!(reparsed.label(), label, "format→parse→format drifted");
                assert_eq!(reparsed.algo(), kind, "{label}");
                assert_eq!(reparsed.clock_scheme(), scheme, "{label}");
                assert_eq!(reparsed.retry_label(), policy.label(), "{label}");
                checked += 1;
            }
        }
    }
    // (7 fixed + 101 mixed) kinds × 5 schemes × 8 policies (the PR-2 four
    // plus the Retry 2.0 full-jitter/fib/cb/budgeted slugs).
    assert_eq!(checked, 108 * 5 * 8);
}

#[test]
fn partial_labels_reformat_to_the_canonical_full_form() {
    for (partial, full) in [
        ("rh2", "rh2+gv-strict+paper-default"),
        ("tl2+gv5", "tl2+gv5+paper-default"),
        ("htm+adaptive", "htm+gv-strict+adaptive"),
        ("rh1-mixed-37+adaptive+gv6", "rh1-mixed-37+gv6+adaptive"),
        ("  RH2+GV6  ", "rh2+gv6+paper-default"),
    ] {
        let spec = TmSpec::parse(partial).unwrap_or_else(|| panic!("{partial:?} must parse"));
        assert_eq!(spec.label(), full, "{partial}");
        // And the canonical form is a fixed point.
        assert_eq!(TmSpec::parse(full).unwrap().label(), full);
    }
}

#[test]
fn near_miss_labels_are_rejected_not_defaulted() {
    // Hand-picked near-misses for every grammar production.
    for bad in [
        "rh3",
        "rh1-mixed-101",
        "rh1-mixed-256",
        "rh1-mixed--1",
        "rh1-mixed-",
        "tl2+gv7",
        "tl2+gv",
        "tl2+paper",
        "tl2+gv5+gv6",
        "tl2+adaptive+aggressive",
        "tl2++adaptive",
        "+tl2",
        "tl2+",
        "",
        "+",
        "gv5+tl2", // axis in algorithm position
        // Retry 2.0 slug near-misses.
        "rh2+cbb",
        "rh2+c-b",
        "rh2+circuit-breaker",
        "rh2+budget",
        "rh2+budgetted",
        "rh2+full-jitter-",
        "rh2+fulljitter",
        "rh2+fibb",
        "rh2+fibonacci",
        "rh2+cb+budgeted", // two policies in one label
    ] {
        assert!(TmSpec::parse(bad).is_none(), "{bad:?} must be rejected");
        assert!(
            AlgoKind::parse(bad).is_none() || TmSpec::parse(bad).is_none(),
            "{bad:?}"
        );
    }
    // Fuzzed single-character mutations of valid labels: whatever still
    // parses must re-format canonically (never silently become a
    // *different* point than its own label claims).
    let mut rng = CaseRng::new(0x5bec_1abe);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789+-".chars().collect();
    for case in 0..2_000 {
        let kinds = every_algo();
        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let scheme = ClockScheme::ALL[rng.below(5) as usize];
        let policies = RetryPolicyHandle::builtin();
        let policy = &policies[rng.below(policies.len() as u64) as usize];
        let label = TmSpec::new(kind)
            .clock(scheme)
            .retry(policy.clone())
            .label();
        let mut chars: Vec<char> = label.chars().collect();
        let pos = rng.below(chars.len() as u64) as usize;
        match rng.below(3) {
            0 => chars[pos] = alphabet[rng.below(alphabet.len() as u64) as usize],
            1 => {
                chars.remove(pos);
            }
            _ => chars.insert(pos, alphabet[rng.below(alphabet.len() as u64) as usize]),
        }
        let mutated: String = chars.into_iter().collect();
        if let Some(spec) = TmSpec::parse(&mutated) {
            let canonical = spec.label();
            assert_eq!(
                TmSpec::parse(&canonical).unwrap().label(),
                canonical,
                "case {case}: mutated {mutated:?} parsed to a non-canonical point"
            );
        }
    }
}

#[test]
fn algo_parse_rejects_out_of_range_mixed_percentages() {
    for p in [101u32, 150, 255, 1000] {
        let label = format!("rh1-mixed-{p}");
        assert_eq!(AlgoKind::parse(&label), None, "{label}");
    }
    assert_eq!(
        AlgoKind::parse("rh1-mixed-100"),
        Some(AlgoKind::Rh1Mixed(100))
    );
    assert_eq!(AlgoKind::parse("rh1-mixed-0"), Some(AlgoKind::Rh1Mixed(0)));
}

// ---------------------------------------------------------------------
// Golden stats: TmSpec construction == hand-assembled configs
// ---------------------------------------------------------------------

const ELEMENTS: u64 = 256;

fn golden_opts() -> DriverOpts {
    // Single-threaded + counted + fixed seed ⇒ the run is deterministic,
    // so equal configurations must produce bit-equal statistics.
    DriverOpts::counted_mix(1, OpMix::read_update(40), 400).with_seed(0xdead_cafe)
}

fn hand_built_sim(scheme: ClockScheme) -> (Arc<HtmSim>, ConstantHashTable) {
    let mem_cfg = MemConfig {
        clock_scheme: scheme,
        ..MemConfig::with_data_words(ConstantHashTable::required_words(ELEMENTS) + 4096)
    };
    let sim = HtmSim::new(Arc::new(TmMemory::new(mem_cfg)), HtmConfig::default());
    let table = ConstantHashTable::new(Arc::clone(&sim), ELEMENTS);
    (sim, table)
}

fn spec_result(kind: AlgoKind, scheme: ClockScheme, policy: &RetryPolicyHandle) -> BenchResult {
    TmSpec::new(kind)
        .clock(scheme)
        .retry(policy.clone())
        .mem(MemConfig::with_data_words(
            ConstantHashTable::required_words(ELEMENTS) + 4096,
        ))
        .bench(
            |sim| ConstantHashTable::new(Arc::clone(sim), ELEMENTS),
            &golden_opts(),
        )
}

fn assert_golden(kind: AlgoKind, via_spec: BenchResult, hand: BenchResult) {
    assert_eq!(via_spec.total_ops, hand.total_ops, "{kind:?}: ops diverged");
    assert_eq!(
        via_spec.stats, hand.stats,
        "{kind:?}: TmSpec construction drifted from the hand-assembled config"
    );
}

#[test]
fn spec_matches_hand_assembled_rh_configs() {
    let policy = RetryPolicyHandle::adaptive();
    let scheme = ClockScheme::Gv6;
    for (kind, config) in [
        (AlgoKind::Rh1Fast, RhConfig::rh1_fast()),
        (AlgoKind::Rh1Mixed(100), RhConfig::rh1_mixed(100)),
        (AlgoKind::Rh1Slow, RhConfig::rh1_slow()),
        (AlgoKind::Rh2, RhConfig::rh2()),
    ] {
        let (sim, table) = hand_built_sim(scheme);
        let runtime = RhRuntime::with_sim(sim, config.with_retry_policy(policy.clone()));
        let hand = run_benchmark(&runtime, &table, &golden_opts());
        assert_golden(kind, spec_result(kind, scheme, &policy), hand);
    }
}

#[test]
fn spec_matches_hand_assembled_tl2_and_htm_configs() {
    let policy = RetryPolicyHandle::capped_exponential();
    let scheme = ClockScheme::Gv5;

    let (sim, table) = hand_built_sim(scheme);
    let tl2 =
        Tl2Runtime::with_sim_config(sim, Tl2Config::default().with_retry_policy(policy.clone()));
    let hand = run_benchmark(&tl2, &table, &golden_opts());
    assert_golden(
        AlgoKind::Tl2,
        spec_result(AlgoKind::Tl2, scheme, &policy),
        hand,
    );

    let (sim, table) = hand_built_sim(scheme);
    let htm = HtmRuntime::with_sim_config(
        sim,
        HtmRuntimeConfig::default().with_retry_policy(policy.clone()),
    );
    let hand = run_benchmark(&htm, &table, &golden_opts());
    assert_golden(
        AlgoKind::Htm,
        spec_result(AlgoKind::Htm, scheme, &policy),
        hand,
    );
}

#[test]
fn spec_matches_hand_assembled_std_hytm_and_global_lock() {
    let policy = RetryPolicyHandle::paper_default();
    let scheme = ClockScheme::GvStrict;

    let (sim, table) = hand_built_sim(scheme);
    let hytm = StdHytmRuntime::with_sim(
        sim,
        StdHytmConfig::hardware_only().with_retry_policy(policy.clone()),
    );
    let hand = run_benchmark(&hytm, &table, &golden_opts());
    assert_golden(
        AlgoKind::StdHytm,
        spec_result(AlgoKind::StdHytm, scheme, &policy),
        hand,
    );

    let (sim, table) = hand_built_sim(scheme);
    let lock = MutexRuntime::with_sim(sim);
    let hand = run_benchmark(&lock, &table, &golden_opts());
    assert_golden(
        AlgoKind::GlobalLock,
        spec_result(AlgoKind::GlobalLock, scheme, &policy),
        hand,
    );
}

// ---------------------------------------------------------------------
// The spec label is carried into the report row
// ---------------------------------------------------------------------

#[test]
fn bench_records_the_spec_label_in_the_result_row() {
    let policy = RetryPolicyHandle::aggressive();
    let result = spec_result(AlgoKind::Rh2, ClockScheme::Gv4, &policy);
    assert_eq!(result.spec, "rh2+gv4+aggressive");
    assert_eq!(result.algorithm, "RH2");
    // Direct driver runs have no spec to record.
    let (sim, table) = hand_built_sim(ClockScheme::GvStrict);
    let runtime = MutexRuntime::with_sim(sim);
    let direct = run_benchmark(&runtime, &table, &golden_opts());
    assert!(direct.spec.is_empty());
}
