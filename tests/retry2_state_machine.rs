//! Retry 2.0 state-machine pack: the circuit breaker's
//! Closed → Open → HalfOpen transitions and the retry budget's token
//! arithmetic, locked down deterministically.
//!
//! Every test scripts [`AttemptContext`] sequences straight into the
//! policies — no runtime, no simulated HTM — so each transition fires at
//! an *exact*, asserted step.  The runtimes' integration with the same
//! policies is covered by `tests/retry2_phases.rs` and the cross-runtime
//! packs; this file is the specification of the state machines themselves.

use rhtm_api::{
    AbortCause, AttemptContext, Budgeted, CircuitBreaker, CircuitBreakerConfig, PathClass,
    RetryBudget, RetryDecision, RetryMetrics, RetryPolicy, RetryPolicyHandle, RetryRng,
};

/// A demotable hardware-path context: the only class of decision the
/// breaker governs.
fn hw(attempt: u32, cause: AbortCause) -> AttemptContext {
    AttemptContext {
        attempt,
        path: PathClass::Hardware,
        cause,
        can_demote: true,
        retry_budget: u32::MAX,
        mix_percent: 100,
        fallback_rh2: 0,
        fallback_all_software: 0,
    }
}

/// A bottom-tier software context (TL2 / RH2 slow-path): nowhere to demote
/// to, so the universal clamp must keep the thread retrying.
fn bottom_tier(attempt: u32) -> AttemptContext {
    AttemptContext {
        attempt,
        path: PathClass::Software,
        cause: AbortCause::Validation,
        can_demote: false,
        retry_budget: u32::MAX,
        mix_percent: 0,
        fallback_rh2: 0,
        fallback_all_software: 0,
    }
}

/// A breaker whose inner policy always answers `RetryHere` (the
/// `aggressive` built-in on a conflict context), so every decision the
/// test observes is the breaker's own.
fn breaker(open_threshold: u32, probe_interval: u32, close_streak: u32) -> CircuitBreaker {
    CircuitBreaker::new(
        &RetryPolicyHandle::aggressive(),
        CircuitBreakerConfig {
            open_threshold,
            probe_interval,
            close_streak,
        },
    )
}

#[test]
fn breaker_opens_on_exactly_the_nth_capacity_abort() {
    let cb = breaker(4, 8, 2);
    let mut rng = RetryRng::new(1);
    let mut m = RetryMetrics::default();
    // Failures 1..=3 stay closed; the 4th consecutive capacity abort opens.
    for attempt in 1..=3u32 {
        cb.decide_observed(&hw(attempt, AbortCause::Capacity), &mut rng, &mut m);
        assert_eq!(
            cb.state_label(),
            "closed",
            "failure {attempt} must not open"
        );
        assert_eq!(m.circuit_opens, 0);
    }
    let opened = cb.decide_observed(&hw(4, AbortCause::Capacity), &mut rng, &mut m);
    assert_eq!(opened, RetryDecision::Demote);
    assert_eq!(cb.state_label(), "open");
    assert_eq!(m.circuit_opens, 1);
}

#[test]
fn breaker_counts_conflict_and_capacity_failures_alike() {
    let cb = breaker(3, 8, 1);
    let mut rng = RetryRng::new(2);
    let mut m = RetryMetrics::default();
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m);
    cb.decide_observed(&hw(2, AbortCause::Capacity), &mut rng, &mut m);
    assert_eq!(cb.state_label(), "closed");
    cb.decide_observed(&hw(3, AbortCause::Conflict), &mut rng, &mut m);
    assert_eq!(
        cb.state_label(),
        "open",
        "mixed causes still open the circuit"
    );
}

#[test]
fn open_breaker_demotes_until_the_probe_interval_elapses() {
    let cb = breaker(1, 3, 1);
    let mut rng = RetryRng::new(3);
    let mut m = RetryMetrics::default();
    // First failure opens immediately (threshold 1).
    assert_eq!(
        cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m),
        RetryDecision::Demote
    );
    assert_eq!(cb.state_label(), "open");
    // Open decisions 1 and 2 are shed demotions; the 3rd admits the probe.
    for i in 1..=2u32 {
        assert_eq!(
            cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m),
            RetryDecision::Demote,
            "open decision {i} must shed"
        );
        assert_eq!(cb.state_label(), "open");
        assert_eq!(m.circuit_probes, 0);
    }
    assert_eq!(
        cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m),
        RetryDecision::RetryHere,
        "the probe re-admits one hardware attempt"
    );
    assert_eq!(cb.state_label(), "half-open");
    assert_eq!(m.circuit_probes, 1);
}

#[test]
fn half_open_closes_after_the_commit_streak() {
    let cb = breaker(1, 1, 2);
    let mut rng = RetryRng::new(4);
    let mut m = RetryMetrics::default();
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // opens
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // probe
    assert_eq!(cb.state_label(), "half-open");
    // One hardware commit is not enough for close_streak = 2...
    cb.on_commit(true, &mut m);
    assert_eq!(cb.state_label(), "half-open");
    assert_eq!(m.circuit_closes, 0);
    // ...the second closes.
    cb.on_commit(true, &mut m);
    assert_eq!(cb.state_label(), "closed");
    assert_eq!(m.circuit_closes, 1);
}

#[test]
fn half_open_probe_failure_reopens_and_restarts_the_interval() {
    let cb = breaker(1, 2, 1);
    let mut rng = RetryRng::new(5);
    let mut m = RetryMetrics::default();
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // opens
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // shed 1
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // probe
    assert_eq!(cb.state_label(), "half-open");
    // The probe aborts: back to open, counted as a fresh opening, and the
    // probe interval restarts from zero (2 more sheds before the next probe).
    assert_eq!(
        cb.decide_observed(&hw(2, AbortCause::Conflict), &mut rng, &mut m),
        RetryDecision::Demote
    );
    assert_eq!(cb.state_label(), "open");
    assert_eq!(m.circuit_opens, 2);
    assert_eq!(
        cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m),
        RetryDecision::Demote,
        "interval restarted: first post-reopen decision sheds"
    );
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m);
    assert_eq!(
        cb.state_label(),
        "half-open",
        "second probe admitted on schedule"
    );
    assert_eq!(m.circuit_probes, 2);
}

#[test]
fn software_commits_do_not_close_a_half_open_breaker() {
    let cb = breaker(1, 1, 1);
    let mut rng = RetryRng::new(6);
    let mut m = RetryMetrics::default();
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // opens
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m); // probe
    assert_eq!(cb.state_label(), "half-open");
    // The demoted siblings keep committing in software; that says nothing
    // about hardware viability, so the circuit must not close.
    for _ in 0..5 {
        cb.on_commit(false, &mut m);
    }
    assert_eq!(cb.state_label(), "half-open");
    assert_eq!(m.circuit_closes, 0);
    cb.on_commit(true, &mut m);
    assert_eq!(cb.state_label(), "closed");
}

#[test]
fn breaker_state_is_per_thread() {
    let cb = std::sync::Arc::new(breaker(1, 8, 1));
    let mut rng = RetryRng::new(7);
    let mut m = RetryMetrics::default();
    cb.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m);
    assert_eq!(cb.state_label(), "open");
    // Another thread sharing the same policy instance starts closed.
    let other = std::sync::Arc::clone(&cb);
    let other_label = std::thread::spawn(move || {
        let label = other.state_label();
        let mut rng = RetryRng::new(8);
        let mut m = RetryMetrics::default();
        other.decide_observed(&hw(1, AbortCause::Conflict), &mut rng, &mut m);
        (label, other.state_label())
    })
    .join()
    .unwrap();
    assert_eq!(
        other_label,
        ("closed", "open"),
        "fresh thread, fresh circuit"
    );
    // ...and this thread's circuit was untouched by the other's trip.
    assert_eq!(cb.state_label(), "open");
}

#[test]
fn token_bucket_drain_and_refill_arithmetic_is_exact() {
    let bucket = RetryBudget::new(3, 2);
    assert_eq!((bucket.capacity(), bucket.refill_per_commit()), (3, 2));
    assert_eq!(bucket.tokens(), 3, "a bucket starts full");
    assert!(bucket.try_drain());
    assert!(bucket.try_drain());
    assert!(bucket.try_drain());
    assert_eq!(bucket.tokens(), 0);
    assert!(!bucket.try_drain(), "an empty bucket refuses");
    assert_eq!(bucket.tokens(), 0, "a refused drain takes nothing");
    bucket.refill();
    assert_eq!(bucket.tokens(), 2);
    bucket.refill();
    assert_eq!(bucket.tokens(), 3, "refill saturates at capacity");
    bucket.refill();
    assert_eq!(bucket.tokens(), 3);
}

#[test]
fn budget_exhaustion_demotes_and_is_counted() {
    let b = Budgeted::new(&RetryPolicyHandle::aggressive(), RetryBudget::new(1, 1));
    let mut rng = RetryRng::new(9);
    let mut m = RetryMetrics::default();
    let ctx = hw(1, AbortCause::Conflict);
    assert_eq!(
        b.decide_observed(&ctx, &mut rng, &mut m),
        RetryDecision::RetryHere,
        "the last token buys a retry"
    );
    assert_eq!(b.budget().tokens(), 0);
    assert_eq!(
        b.decide_observed(&ctx, &mut rng, &mut m),
        RetryDecision::Demote,
        "exhaustion sheds the retry into a demotion"
    );
    assert_eq!(m.budget_exhausted, 1);
}

#[test]
fn inner_demotes_do_not_pay_tokens() {
    // PaperDefault demotes a capacity abort on its own; the bucket must
    // not be charged for a retry that was never granted.
    let b = Budgeted::new(&RetryPolicyHandle::paper_default(), RetryBudget::new(4, 1));
    let mut rng = RetryRng::new(10);
    let mut m = RetryMetrics::default();
    assert_eq!(
        b.decide_observed(&hw(1, AbortCause::Capacity), &mut rng, &mut m),
        RetryDecision::Demote
    );
    assert_eq!(b.budget().tokens(), 4, "a pass-through demote is free");
    assert_eq!(m.budget_exhausted, 0);
}

#[test]
fn exhausted_budget_never_deadlocks_a_bottom_tier_thread() {
    // A solo TL2 thread (or the RH2 slow path) has nowhere to demote to.
    // The handle's clamped decision path must turn the exhaustion-demote
    // back into RetryHere — forever — or a single validation-aborting
    // thread would spin on Demote with no tier below it.
    let handle = RetryPolicyHandle::new(Budgeted::new(
        &RetryPolicyHandle::aggressive(),
        RetryBudget::new(0, 1),
    ));
    let mut rng = RetryRng::new(11);
    let mut m = RetryMetrics::default();
    for attempt in 1..=50u32 {
        assert_eq!(
            handle.decide_clamped_observed(&bottom_tier(attempt), &mut rng, &mut m),
            RetryDecision::RetryHere,
            "attempt {attempt}: the clamp must keep a bottom-tier thread alive"
        );
    }
    assert_eq!(m.budget_exhausted, 50, "every shed is still observed");
    assert_eq!(m.retry_here, 50, "...and lands as a clamped retry");
    assert_eq!(m.demote, 0);
}

#[test]
fn clamped_observation_splits_decisions_by_outcome() {
    // One scripted storm through the handle's observed path: the decision
    // counters must partition exactly (retry_here + demote + backoff ==
    // decisions()) and the cause histogram must follow the script.
    let handle = RetryPolicyHandle::circuit_breaker(); // opens after 4
    let mut rng = RetryRng::new(12);
    let mut m = RetryMetrics::default();
    for attempt in 1..=10u32 {
        handle.decide_clamped_observed(&hw(attempt, AbortCause::Conflict), &mut rng, &mut m);
    }
    assert_eq!(m.decisions(), 10);
    assert_eq!(
        m.retry_here + m.demote + m.backoff,
        m.decisions(),
        "outcome counters partition the decisions"
    );
    assert_eq!(m.cause_count(AbortCause::Conflict), 10);
    assert_eq!(m.cause_count(AbortCause::Capacity), 0);
    assert_eq!(m.circuit_opens, 1, "the storm tripped the breaker once");
    assert!(m.demote >= 1, "post-open decisions shed");
}
