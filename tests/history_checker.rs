//! The history/invariant checker, adversarially.
//!
//! A checker that never rejects anything is worse than no checker: it
//! blesses broken runs.  So before trusting `rhtm_workloads::check` to
//! guard the stress suites, every checker is fed **hand-crafted
//! known-bad histories** — a lost update, broken FIFO order, a
//! non-conserving transfer, a phantom read inside a scan — and must
//! reject each one (mutation testing for the checkers themselves).
//! The flip side is soundness: recorded histories from real runs on
//! real runtimes must check clean, including the `check-suite` sweep
//! over three full `TmSpec` points and a freelist-recycling churn that
//! would surface a skiplist ABA/double-free as a map-semantics
//! violation.

use std::sync::Arc;

use rhtm_api::TmRuntime;
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;
use rhtm_workloads::check::{
    check_all, record_bank_stress, record_map_churn, record_queue_stress, BankChecker, Checker,
    FifoChecker, MapChecker, ScanChecker,
};
use rhtm_workloads::structures::bank::{pack_entry, BankSnapshot};
use rhtm_workloads::{AlgoVisitor, EventKind, History, TmSpec, TxBank, TxQueue, TxSkipList};

fn runtime(words: usize) -> RhRuntime {
    RhRuntime::new(
        MemConfig::with_data_words(words),
        HtmConfig::default(),
        RhConfig::rh1_mixed(100),
    )
}

// ---------------------------------------------------------------------
// Mutation self-tests: every checker must reject its known-bad history
// ---------------------------------------------------------------------

#[test]
fn map_checker_rejects_a_lost_update() {
    // Key 5 starts at 10; two writers update it to 1 and 2; the final
    // state still says 10 — every update was lost.  No serialization
    // allows it, because some write must be ordered last.
    let checker = MapChecker::new([(5, 10)], [(5, 10)]);
    let history = History::from_kinds(vec![
        vec![EventKind::Insert {
            key: 5,
            value: 1,
            inserted: false,
        }],
        vec![EventKind::Insert {
            key: 5,
            value: 2,
            inserted: false,
        }],
    ]);
    let violation = checker.check(&history).unwrap_err();
    assert!(violation.detail.contains("never written"), "{violation}");
    // The same events with a surviving write are a legal history.
    MapChecker::new([(5, 10)], [(5, 2)])
        .check(&history)
        .unwrap();
}

#[test]
fn map_checker_rejects_a_double_free_shaped_duplicate_insert() {
    // A freelist double-free hands the same node to two inserts: both
    // report `inserted: true` for a key that can only be absent once.
    let checker = MapChecker::new([], [(7, 1)]);
    let history = History::from_kinds(vec![
        vec![EventKind::Insert {
            key: 7,
            value: 1,
            inserted: true,
        }],
        vec![EventKind::Insert {
            key: 7,
            value: 1,
            inserted: true,
        }],
    ]);
    let violation = checker.check(&history).unwrap_err();
    assert!(violation.detail.contains("presence"), "{violation}");
}

#[test]
fn map_checker_rejects_a_conjured_lookup_value() {
    let checker = MapChecker::new([(3, 30)], [(3, 30)]);
    let history = History::from_kinds(vec![vec![EventKind::Lookup {
        key: 3,
        value: Some(99),
    }]]);
    let violation = checker.check(&history).unwrap_err();
    assert!(violation.detail.contains("nobody wrote"), "{violation}");
}

#[test]
fn fifo_checker_rejects_broken_fifo_order() {
    // Producer (thread 0) enqueues 10 then 11; the consumer dequeues
    // them swapped.
    let checker = FifoChecker::new(vec![], vec![]);
    let history = History::from_kinds(vec![
        vec![
            EventKind::Enqueue {
                value: 10,
                accepted: true,
            },
            EventKind::Enqueue {
                value: 11,
                accepted: true,
            },
        ],
        vec![
            EventKind::Dequeue { value: Some(11) },
            EventKind::Dequeue { value: Some(10) },
        ],
    ]);
    let violation = checker.check(&history).unwrap_err();
    assert!(violation.detail.contains("out of order"), "{violation}");
}

#[test]
fn fifo_checker_rejects_loss_duplication_and_phantoms() {
    let checker = FifoChecker::new(vec![], vec![]);
    let lost = History::from_kinds(vec![vec![EventKind::Enqueue {
        value: 1,
        accepted: true,
    }]]);
    assert!(checker.check(&lost).unwrap_err().detail.contains("lost"));
    let duplicated = History::from_kinds(vec![vec![
        EventKind::Enqueue {
            value: 1,
            accepted: true,
        },
        EventKind::Dequeue { value: Some(1) },
        EventKind::Dequeue { value: Some(1) },
    ]]);
    assert!(checker
        .check(&duplicated)
        .unwrap_err()
        .detail
        .contains("duplicated"));
    let phantom = History::from_kinds(vec![vec![EventKind::Dequeue { value: Some(42) }]]);
    assert!(checker
        .check(&phantom)
        .unwrap_err()
        .detail
        .contains("never enqueued"));
}

#[test]
fn bank_checker_rejects_a_non_conserving_transfer() {
    // One applied transfer of 30 from account 0 to 1, but the snapshot
    // credited 31: value was created out of thin air.
    let history = History::from_kinds(vec![vec![EventKind::Transfer {
        from: 0,
        to: 1,
        amount: 30,
        applied: true,
    }]]);
    let bad = BankChecker::with_params(
        2,
        100,
        BankSnapshot {
            balances: vec![70, 131],
            audit_seq: 1,
            audit: vec![(0, pack_entry(0, 1, 30))],
        },
    );
    let violation = bad.check(&history).unwrap_err();
    assert!(violation.detail.contains("sum to"), "{violation}");
    // The honest snapshot passes.
    BankChecker::with_params(
        2,
        100,
        BankSnapshot {
            balances: vec![70, 130],
            audit_seq: 1,
            audit: vec![(0, pack_entry(0, 1, 30))],
        },
    )
    .check(&history)
    .unwrap();
}

#[test]
fn bank_checker_rejects_unlogged_and_misreplayed_transfers() {
    let history = History::from_kinds(vec![vec![EventKind::Transfer {
        from: 0,
        to: 1,
        amount: 30,
        applied: true,
    }]]);
    // Conserving, but the money moved between the wrong accounts.
    let misreplayed = BankChecker::with_params(
        3,
        100,
        BankSnapshot {
            balances: vec![100, 130, 70],
            audit_seq: 1,
            audit: vec![(0, pack_entry(0, 1, 30))],
        },
    );
    let violation = misreplayed.check(&history).unwrap_err();
    assert!(violation.detail.contains("replay"), "{violation}");
    // Applied transfer missing from the audit sequence.
    let unlogged = BankChecker::with_params(
        2,
        100,
        BankSnapshot {
            balances: vec![70, 130],
            audit_seq: 0,
            audit: vec![],
        },
    );
    let violation = unlogged.check(&history).unwrap_err();
    assert!(violation.detail.contains("audit sequence"), "{violation}");
}

#[test]
fn scan_checkers_reject_a_phantom_read() {
    // A scan racing a transfer observed a half-applied state: the debit
    // without the credit.
    let history = History::from_kinds(vec![
        vec![EventKind::Transfer {
            from: 0,
            to: 1,
            amount: 30,
            applied: true,
        }],
        vec![EventKind::Scan { sum: 170 }],
    ]);
    let scan = ScanChecker { expected: 200 };
    let violation = scan.check(&history).unwrap_err();
    assert!(violation.detail.contains("170"), "{violation}");
    // BankChecker flags the same phantom independently of the snapshot.
    let bank = BankChecker::with_params(
        2,
        100,
        BankSnapshot {
            balances: vec![70, 130],
            audit_seq: 1,
            audit: vec![(0, pack_entry(0, 1, 30))],
        },
    );
    assert!(bank.check(&history).is_err());
}

// ---------------------------------------------------------------------
// Freelist ABA/double-free regression: churn forces node recycling
// ---------------------------------------------------------------------

#[test]
fn skiplist_freelist_recycling_churn_checks_clean() {
    // A tiny key space with insert/remove-heavy traffic cycles every
    // node through remove -> freelist -> insert repeatedly; an ABA slip
    // or double-free in `TxSkipList::remove` would seat one node under
    // two keys and break presence arithmetic or value provenance.
    let rt = runtime(1 << 14);
    let list = TxSkipList::new(Arc::clone(rt.sim()), 12);
    for k in 1..=6u64 {
        list.seed_insert(k, k);
    }
    let (checker, history) = record_map_churn(&rt, &list, 4, 400, 0xABA);
    assert_eq!(history.len(), 1_600);
    if let Err(v) = checker.check(&history) {
        panic!("freelist churn corrupted the map: {v}");
    }
    assert!(list.is_well_formed_quiescent());
}

// ---------------------------------------------------------------------
// check-suite: recorded stress across three full TmSpec points
// ---------------------------------------------------------------------

/// The spec sweep CI's `check-suite` job runs: RH2 on GV6 with adaptive
/// retries, TL2 on GV5 with capped exponential backoff, the standard-HyTM
/// baseline, and two Retry 2.0 points — the circuit breaker on the
/// breaker-sensitive RH1 Mixed 10 configuration and the shared retry
/// budget on RH2 — so demote-shedding policies are exercised under the
/// recorded linearizability checkers, not just the throughput driver.
const CHECK_SUITE_SPECS: [&str; 5] = [
    "rh2+gv6+adaptive",
    "tl2+gv5+capped-exp",
    "standard-hytm",
    "rh1-mixed-10+gv-strict+cb",
    "rh2+gv6+budgeted",
];

#[test]
fn check_suite_specs_pass_all_recorded_checkers() {
    for label in CHECK_SUITE_SPECS {
        let spec = TmSpec::parse(label).unwrap_or_else(|| panic!("spec label {label}"));
        // Map churn.
        {
            let spec = spec.clone().mem(MemConfig::with_data_words(
                TxSkipList::required_words(64, 4) + 8192,
            ));
            let sim = spec.build_sim();
            let list = Arc::new(TxSkipList::new(Arc::clone(&sim), 32));
            for k in 1..=16u64 {
                list.seed_insert(k, k);
            }
            struct MapStress(Arc<TxSkipList>);
            impl AlgoVisitor for MapStress {
                type Out = Vec<String>;
                fn visit<R: TmRuntime>(self, rt: R) -> Vec<String> {
                    let (checker, history) = record_map_churn(&rt, &self.0, 3, 250, 0x51);
                    check_all(&history, &[&checker])
                        .iter()
                        .map(|v| v.to_string())
                        .collect()
                }
            }
            let violations = spec.visit_on(sim, MapStress(Arc::clone(&list)));
            assert!(violations.is_empty(), "{label}: map churn: {violations:?}");
        }
        // Producer/consumer FIFO.
        {
            let spec = spec.clone().mem(MemConfig::with_data_words(
                TxQueue::required_words(16) + 8192,
            ));
            let sim = spec.build_sim();
            let queue = Arc::new(TxQueue::new(Arc::clone(&sim), 16));
            struct QueueStress(Arc<TxQueue>);
            impl AlgoVisitor for QueueStress {
                type Out = Vec<String>;
                fn visit<R: TmRuntime>(self, rt: R) -> Vec<String> {
                    let (checker, history) = record_queue_stress(&rt, &self.0, 2, 2, 60);
                    check_all(&history, &[&checker])
                        .iter()
                        .map(|v| v.to_string())
                        .collect()
                }
            }
            let violations = spec.visit_on(sim, QueueStress(Arc::clone(&queue)));
            assert!(violations.is_empty(), "{label}: queue: {violations:?}");
        }
        // Composed bank with analytics scans.
        {
            let spec = spec.clone().mem(MemConfig::with_data_words(
                TxBank::required_words(16, 32, 3) + 8192,
            ));
            let sim = spec.build_sim();
            let bank = Arc::new(TxBank::new(Arc::clone(&sim), 16, 400, 32));
            struct BankStress(Arc<TxBank>);
            impl AlgoVisitor for BankStress {
                type Out = Vec<String>;
                fn visit<R: TmRuntime>(self, rt: R) -> Vec<String> {
                    let (checker, history) = record_bank_stress(&rt, &self.0, 3, 150, 0x77);
                    let scans = ScanChecker {
                        expected: self.0.expected_total(),
                    };
                    check_all(&history, &[&checker as &dyn Checker, &scans])
                        .iter()
                        .map(|v| v.to_string())
                        .collect()
                }
            }
            let violations = spec.visit_on(sim, BankStress(Arc::clone(&bank)));
            assert!(violations.is_empty(), "{label}: bank: {violations:?}");
            assert!(bank.audit().is_well_formed_quiescent(), "{label}");
        }
    }
}
