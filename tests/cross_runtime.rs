//! Cross-crate integration tests: every runtime in the workspace is driven
//! through the same generic workloads and must produce the same final state
//! as the sequential model / the global-lock oracle.

use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{Addr, MemConfig};
use rhtm_stm::{MutexRuntime, Tl2Runtime};
use rhtm_workloads::WorkloadRng;

const THREADS: usize = 6;
const OPS: usize = 4_000;
const CELLS: usize = 48;

/// Runs a workload of random read-modify-write transactions over a small
/// array of counters and returns the final per-cell values plus the grand
/// total of increments applied.
fn histogram_workload<R: TmRuntime>(runtime: Arc<R>) -> (Vec<u64>, u64) {
    let cells: Arc<Vec<Addr>> = Arc::new((0..CELLS).map(|_| runtime.mem().alloc(8)).collect());
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || {
                let mut thread = runtime.register_thread();
                let mut rng = WorkloadRng::new(tid as u64 * 77 + 1);
                let mut applied = 0u64;
                for _ in 0..OPS {
                    // Each transaction increments two distinct cells.
                    let a = cells[rng.next_below(CELLS as u64) as usize];
                    let b = cells[rng.next_below(CELLS as u64) as usize];
                    if a == b {
                        continue;
                    }
                    thread.execute(|tx| {
                        let va = tx.read(a)?;
                        let vb = tx.read(b)?;
                        tx.write(a, va + 1)?;
                        tx.write(b, vb + 1)?;
                        Ok(())
                    });
                    applied += 2;
                }
                applied
            })
        })
        .collect();
    let mut applied = 0;
    for h in handles {
        applied += h.join().unwrap();
    }
    let values = cells
        .iter()
        .map(|&c| runtime.mem().heap().load(c))
        .collect();
    (values, applied)
}

fn check_histogram<R: TmRuntime>(runtime: R) {
    let name = runtime.name();
    let (values, applied) = histogram_workload(Arc::new(runtime));
    let total: u64 = values.iter().sum();
    assert_eq!(total, applied, "{name}: increments were lost or duplicated");
}

#[test]
fn htm_runtime_preserves_every_increment() {
    check_histogram(HtmRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
    ));
}

#[test]
fn tl2_runtime_preserves_every_increment() {
    check_histogram(Tl2Runtime::new(MemConfig::with_data_words(4096)));
}

#[test]
fn std_hytm_runtime_preserves_every_increment() {
    check_histogram(StdHytmRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        StdHytmConfig::default(),
    ));
    check_histogram(StdHytmRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        StdHytmConfig::hardware_only(),
    ));
}

#[test]
fn rh1_variants_preserve_every_increment() {
    for config in [
        RhConfig::rh1_fast(),
        RhConfig::rh1_mixed(10),
        RhConfig::rh1_mixed(100),
        RhConfig::rh1_slow(),
    ] {
        check_histogram(RhRuntime::new(
            MemConfig::with_data_words(4096),
            HtmConfig::default(),
            config,
        ));
    }
}

#[test]
fn rh2_and_global_lock_preserve_every_increment() {
    check_histogram(RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        RhConfig::rh2(),
    ));
    check_histogram(MutexRuntime::new(MemConfig::with_data_words(4096)));
}

#[test]
fn rh1_with_injected_failures_preserves_every_increment() {
    // Spurious aborts and a forced abort ratio stress the retry and fallback
    // machinery without changing the workload's semantics.
    check_histogram(RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default()
            .with_spurious_abort_rate(0.05)
            .with_forced_abort_ratio(0.3),
        RhConfig::rh1_mixed(100),
    ));
}

#[test]
fn rh1_with_tiny_capacity_preserves_every_increment() {
    // With a 2-line read budget even the two-cell transactions frequently
    // overflow, so commits are forced through the slow paths.
    check_histogram(RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::with_capacity(2, 2),
        RhConfig::rh1_mixed(100),
    ));
}

#[test]
fn all_runtimes_agree_on_a_deterministic_single_thread_history() {
    // A single-threaded, seeded history must produce bit-identical final
    // memory across every runtime (they only differ in concurrency control).
    fn run<R: TmRuntime>(runtime: R) -> Vec<u64> {
        let cells: Vec<Addr> = (0..16).map(|_| runtime.mem().alloc(1)).collect();
        let mut thread = runtime.register_thread();
        let mut rng = WorkloadRng::new(1234);
        for _ in 0..2_000 {
            let a = cells[rng.next_below(16) as usize];
            let b = cells[rng.next_below(16) as usize];
            let delta = rng.next_below(100);
            thread.execute(|tx| {
                let va = tx.read(a)?;
                tx.write(a, va.wrapping_add(delta))?;
                let vb = tx.read(b)?;
                tx.write(b, vb ^ delta)?;
                Ok(())
            });
        }
        cells
            .iter()
            .map(|&c| runtime.mem().heap().load(c))
            .collect()
    }

    let mem = || MemConfig::with_data_words(1024);
    let reference = run(MutexRuntime::new(mem()));
    assert_eq!(reference, run(HtmRuntime::new(mem(), HtmConfig::default())));
    assert_eq!(reference, run(Tl2Runtime::new(mem())));
    assert_eq!(
        reference,
        run(StdHytmRuntime::new(
            mem(),
            HtmConfig::default(),
            StdHytmConfig::default()
        ))
    );
    for config in [
        RhConfig::rh1_fast(),
        RhConfig::rh1_mixed(100),
        RhConfig::rh1_slow(),
        RhConfig::rh2(),
    ] {
        assert_eq!(
            reference,
            run(RhRuntime::new(mem(), HtmConfig::default(), config))
        );
    }
}
