//! Property-style tests: pseudo-randomly generated operation sequences are
//! executed through the hybrid runtimes and compared against a sequential
//! model, and randomly generated interleavings of account transfers must
//! conserve the total balance on every protocol variant.
//!
//! The original version of this file used the `proptest` crate; the
//! workspace now builds in offline environments, so the same coverage is
//! driven by a deterministic splitmix64 generator sweeping a fixed number of
//! cases per property.  Failures print the case seed, which reproduces the
//! exact inputs.

use std::collections::HashMap;
use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{ProtocolMode, RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, ValidationMode};
use rhtm_mem::MemConfig;
use rhtm_workloads::mutable::TxHashMap;

/// Deterministic splitmix64 stream used to generate the cases.
struct CaseRng(u64);

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// One operation of the key-value model.
#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn random_map_op(rng: &mut CaseRng) -> MapOp {
    match rng.below(3) {
        0 => MapOp::Insert(rng.below(32), rng.next()),
        1 => MapOp::Remove(rng.below(32)),
        _ => MapOp::Get(rng.below(32)),
    }
}

fn random_rh_config(rng: &mut CaseRng) -> RhConfig {
    match rng.below(5) {
        0 => RhConfig::rh1_fast(),
        1 => RhConfig::rh1_mixed(10),
        2 => RhConfig::rh1_mixed(100),
        3 => RhConfig::rh1_slow(),
        _ => RhConfig::rh2(),
    }
}

fn random_htm_config(rng: &mut CaseRng) -> HtmConfig {
    let read_cap = rng.pick(&[512usize, 16, 4]);
    let write_cap = rng.pick(&[64usize, 4]);
    let spurious = rng.pick(&[0.0f64, 0.2]);
    let validation = rng.pick(&[ValidationMode::Incremental, ValidationMode::CommitOnly]);
    HtmConfig::with_capacity(read_cap, write_cap)
        .with_spurious_abort_rate(spurious)
        .with_validation(validation)
}

/// A single-threaded sequence of map operations behaves exactly like the
/// sequential model, regardless of the protocol variant, the hardware
/// capacity and injected spurious aborts.
#[test]
fn map_operations_match_model() {
    for case in 0..48u64 {
        let mut rng = CaseRng::new(0x4D41_505F ^ case);
        let config = random_rh_config(&mut rng);
        let htm = random_htm_config(&mut rng);
        let num_ops = 1 + rng.below(120) as usize;

        let rt = RhRuntime::new(MemConfig::with_data_words(1 << 14), htm, config);
        let map = TxHashMap::new(Arc::clone(rt.sim()), 32);
        let mut th = rt.register_thread();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..num_ops {
            match random_map_op(&mut rng) {
                MapOp::Insert(k, v) => {
                    assert_eq!(map.insert(&mut th, k, v), model.insert(k, v), "case {case}");
                }
                MapOp::Remove(k) => {
                    assert_eq!(map.remove(&mut th, k), model.remove(&k), "case {case}");
                }
                MapOp::Get(k) => {
                    assert_eq!(map.get(&mut th, k), model.get(&k).copied(), "case {case}");
                }
            }
        }
        assert_eq!(map.len(&mut th), model.len() as u64, "case {case}");
    }
}

/// Concurrent transfers conserve the total balance on every protocol
/// variant and hardware configuration.
#[test]
fn concurrent_transfers_conserve_balance() {
    for case in 0..16u64 {
        let mut rng = CaseRng::new(0xBA1A_0CE5 ^ case);
        let config = random_rh_config(&mut rng);
        let htm = random_htm_config(&mut rng);
        let threads = 2 + rng.below(3) as usize;
        let transfers = 200 + rng.below(400) as usize;
        let accounts = 4 + rng.below(8) as usize;

        let rt = Arc::new(RhRuntime::new(
            MemConfig::with_data_words(1 << 12),
            htm,
            config,
        ));
        let cells: Arc<Vec<_>> = Arc::new((0..accounts).map(|_| rt.mem().alloc(8)).collect());
        for &c in cells.iter() {
            rt.sim().nt_store(c, 100);
        }
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..transfers {
                        let from = cells[(k * 5 + t) % cells.len()];
                        let to = cells[(k * 3 + 2 * t + 1) % cells.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let v = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = cells.iter().map(|&c| rt.sim().nt_load(c)).sum();
        assert_eq!(total, accounts as u64 * 100, "case {case}");
    }
}

/// The runtime's protocol mode is honoured: an RH2 configuration never
/// reports an RH1-specific display name and vice versa.
#[test]
fn display_names_are_consistent() {
    for case in 0..32u64 {
        let mut rng = CaseRng::new(0x0D15_071A ^ case);
        let config = random_rh_config(&mut rng);
        let name = config.display_name();
        match config.mode {
            ProtocolMode::Rh2 => assert_eq!(name, "RH2", "case {case}"),
            ProtocolMode::Rh1 => assert!(name.starts_with("RH1"), "case {case}: {name}"),
        }
    }
}
