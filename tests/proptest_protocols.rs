//! Property-based tests: randomly generated operation sequences are executed
//! through the hybrid runtimes and compared against a sequential model, and
//! randomly generated interleavings of account transfers must conserve the
//! total balance on every protocol variant.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{ProtocolMode, RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, ValidationMode};
use rhtm_mem::MemConfig;
use rhtm_workloads::mutable::TxHashMap;

/// One operation of the key-value model.
#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u64..32, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u64..32).prop_map(MapOp::Remove),
        (0u64..32).prop_map(MapOp::Get),
    ]
}

fn rh_config_strategy() -> impl Strategy<Value = RhConfig> {
    prop_oneof![
        Just(RhConfig::rh1_fast()),
        Just(RhConfig::rh1_mixed(10)),
        Just(RhConfig::rh1_mixed(100)),
        Just(RhConfig::rh1_slow()),
        Just(RhConfig::rh2()),
    ]
}

fn htm_config_strategy() -> impl Strategy<Value = HtmConfig> {
    (
        prop_oneof![Just(512usize), Just(16), Just(4)],
        prop_oneof![Just(64usize), Just(4)],
        prop_oneof![Just(0.0f64), Just(0.2)],
        prop_oneof![Just(ValidationMode::Incremental), Just(ValidationMode::CommitOnly)],
    )
        .prop_map(|(read_cap, write_cap, spurious, validation)| {
            HtmConfig::with_capacity(read_cap, write_cap)
                .with_spurious_abort_rate(spurious)
                .with_validation(validation)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-threaded sequence of map operations behaves exactly like the
    /// sequential model, regardless of the protocol variant, the hardware
    /// capacity and injected spurious aborts.
    #[test]
    fn map_operations_match_model(
        ops in proptest::collection::vec(map_op_strategy(), 1..120),
        config in rh_config_strategy(),
        htm in htm_config_strategy(),
    ) {
        let rt = RhRuntime::new(MemConfig::with_data_words(1 << 14), htm, config);
        let map = TxHashMap::new(Arc::clone(rt.sim()), 32);
        let mut th = rt.register_thread();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(map.insert(&mut th, k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(map.remove(&mut th, k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&mut th, k), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(map.len(&mut th), model.len() as u64);
    }

    /// Concurrent transfers conserve the total balance on every protocol
    /// variant and hardware configuration.
    #[test]
    fn concurrent_transfers_conserve_balance(
        config in rh_config_strategy(),
        htm in htm_config_strategy(),
        threads in 2usize..5,
        transfers in 200usize..600,
        accounts in 4usize..12,
    ) {
        let rt = Arc::new(RhRuntime::new(MemConfig::with_data_words(1 << 12), htm, config));
        let cells: Arc<Vec<_>> = Arc::new((0..accounts).map(|_| rt.mem().alloc(8)).collect());
        for &c in cells.iter() {
            rt.sim().nt_store(c, 100);
        }
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..transfers {
                        let from = cells[(k * 5 + t) % cells.len()];
                        let to = cells[(k * 3 + 2 * t + 1) % cells.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let v = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = cells.iter().map(|&c| rt.sim().nt_load(c)).sum();
        prop_assert_eq!(total, accounts as u64 * 100);
    }

    /// The runtime's protocol mode is honoured: an RH2 configuration never
    /// reports an RH1-specific display name and vice versa.
    #[test]
    fn display_names_are_consistent(config in rh_config_strategy()) {
        let name = config.display_name();
        match config.mode {
            ProtocolMode::Rh2 => prop_assert_eq!(name, "RH2"),
            ProtocolMode::Rh1 => prop_assert!(name.starts_with("RH1")),
        }
    }
}
