//! Workspace-level integration tests for the `rhtm_kv` sharded service:
//! cross-shard conservation under concurrent open-loop load on multiple
//! runtime specs, and single-worker determinism of the whole pipeline
//! (plan -> serve -> snapshot).

use std::time::Duration;

use rhtm::kv::{run_open_loop, KvConfig, KvMix, KvService, LoadOpts, ShardedBankChecker};
use rhtm::workloads::check::{Checker, History};
use rhtm::workloads::TmSpec;

/// A transfer-only mix so every run is conservation-checkable.
fn transfer_mix() -> KvMix {
    KvMix::transfer_mix()
}

#[test]
fn cross_shard_transfers_conserve_under_concurrency_on_every_spec() {
    // Two shards force cross-shard traffic on ~half the transfers; four
    // workers race the two-transaction commit path.  The checker merges
    // every worker's history against a full-service snapshot, so a lost
    // credit on either spec fails here.
    for label in ["tl2", "rh2+gv6+adaptive", "rh1-mixed-100"] {
        let spec = TmSpec::parse(label).expect(label);
        let workers = 4;
        let service = KvService::new(&spec, &KvConfig::new(2, 256, workers));
        let opts = LoadOpts::new(30_000.0, Duration::from_millis(40))
            .with_workers(workers)
            .with_mix(transfer_mix())
            .with_seed(0x5eed_0000 + u64::from(label.len() as u32));
        let report = run_open_loop(&service, &opts);
        assert_eq!(report.generated, report.completed, "{label}: full drain");
        assert!(
            report.applied_transfers > 0,
            "{label}: the run must exercise the transfer path"
        );
        let checker = ShardedBankChecker::for_service(&service);
        let history = History::from_recorders(report.histories);
        checker
            .check(&history)
            .unwrap_or_else(|v| panic!("{label}: {}", v.detail));
        assert_eq!(
            service.total_balance(),
            256 * 100,
            "{label}: balance conserved in the raw totals too"
        );
    }
}

#[test]
fn single_worker_runs_are_deterministic_per_seed() {
    // Two fresh services, same spec/seed/shape: identical plans, identical
    // final state, identical operation counts.  (Latency histograms are
    // wall-clock and may differ; everything derived from the RNG must not.)
    let run = || {
        let spec = TmSpec::parse("rh2").expect("rh2");
        let service = KvService::new(&spec, &KvConfig::new(3, 128, 1));
        let opts = LoadOpts::new(25_000.0, Duration::from_millis(30))
            .with_mix(transfer_mix())
            .with_seed(0xd37e_0001);
        let report = run_open_loop(&service, &opts);
        (
            report.generated,
            report.completed,
            report.applied_transfers,
            report.declined_transfers,
            service.snapshot(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the exact same run");
    let spec = TmSpec::parse("rh2").expect("rh2");
    let service = KvService::new(&spec, &KvConfig::new(3, 128, 1));
    let opts = LoadOpts::new(25_000.0, Duration::from_millis(30))
        .with_mix(transfer_mix())
        .with_seed(0x0bad_5eed);
    let other = run_open_loop(&service, &opts);
    assert_ne!(
        (other.applied_transfers, other.declined_transfers),
        (a.2, a.3),
        "a different seed must drive a different run"
    );
}
