//! The typed data layer and the dyn-erased handles, end to end.
//!
//! Two guarantees are on trial here:
//!
//! * **Bit identity** — every typed access ([`TxCell`], [`TxPtr`],
//!   [`Codec`]) must perform exactly the raw `Addr` + `u64` word access it
//!   replaced: same addresses, same encodings (including the old
//!   `encode_ptr`/`decode_ptr` null sentinel), same statistics.  Checked
//!   with randomized round-trip property tests over the deterministic
//!   splitmix-scrambled [`WorkloadRng`] harness, the same style
//!   `tests/proptest_protocols.rs` uses for the protocols.
//! * **Erasure transparency** — driving any FIGURE_SET algorithm through
//!   `Box<dyn DynRuntime>` must produce *identical* [`TxStats`] to the
//!   same deterministic workload on the generic (visitor) path: the
//!   erased shims add an indirect call, never an access.

use std::sync::Arc;

use rhtm::api::typed::{
    Codec, Field, LayoutBuilder, Record, TxCell, TxLayout, TxPtr, TxSlice, TypedAlloc,
    NULL_PTR_WORD,
};
use rhtm::api::{DynThreadExt, TmRuntime, TmThread, TxStats, Txn};
use rhtm::htm::{HtmConfig, HtmSim};
use rhtm::mem::{Addr, MemConfig, TmMemory};
use rhtm_workloads::{mutable::TxHashMap, AlgoKind, AlgoVisitor, TxSkipList, WorkloadRng};

// ---------------------------------------------------------------------
// Property tests: typed encodings are the raw words
// ---------------------------------------------------------------------

/// The helpers every structure used to copy, kept verbatim as the golden
/// reference for the centralized pointer codec.
fn old_encode_ptr(ptr: Option<Addr>) -> u64 {
    match ptr {
        Some(a) => a.index() as u64,
        None => u64::MAX,
    }
}

fn old_decode_ptr(raw: u64) -> Option<Addr> {
    if raw == u64::MAX {
        None
    } else {
        Some(Addr(raw as usize))
    }
}

struct AnyRecord;
impl Record for AnyRecord {
    const LAYOUT: TxLayout<AnyRecord> = LayoutBuilder::new().pad_to(4).finish();
}

#[test]
fn pointer_codec_is_bit_identical_to_the_replaced_helpers() {
    let mut rng = WorkloadRng::new(0x7e57_c0de);
    assert_eq!(<Option<TxPtr<AnyRecord>>>::encode(None), NULL_PTR_WORD);
    assert_eq!(NULL_PTR_WORD, old_encode_ptr(None));
    for _ in 0..10_000 {
        // Any plausible heap index (the heap is far smaller than u64::MAX).
        let index = rng.next_below(1 << 40) as usize;
        let addr = Addr(index);
        let typed = Some(TxPtr::<AnyRecord>::new(addr));
        assert_eq!(typed.encode(), old_encode_ptr(Some(addr)));
        let raw = typed.encode();
        assert_eq!(
            <Option<TxPtr<AnyRecord>>>::decode(raw).map(TxPtr::addr),
            old_decode_ptr(raw)
        );
    }
    assert_eq!(
        <Option<TxPtr<AnyRecord>>>::decode(NULL_PTR_WORD),
        None::<TxPtr<AnyRecord>>
    );
}

#[test]
fn scalar_codecs_round_trip_random_values() {
    let mut rng = WorkloadRng::new(0x5eed);
    for _ in 0..10_000 {
        let v = rng.next_u64();
        assert_eq!(u64::decode(u64::encode(v)), v);
        assert_eq!(u64::encode(v), v, "u64 codec must be the identity");
        let u = v as usize;
        assert_eq!(usize::decode(usize::encode(u)), u);
        let b = v & 1 == 1;
        assert_eq!(bool::decode(bool::encode(b)), b);
        assert_eq!(bool::encode(b), u64::from(b));
    }
}

/// A typed write followed by a *raw* read (and vice versa) observes the
/// identical word, through a real TM runtime — the typed layer cannot be
/// adding or transforming accesses.
#[test]
fn typed_and_raw_accesses_alias_the_same_words() {
    let rt = rhtm::core::RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        rhtm::core::RhConfig::rh1_mixed(100),
    );
    let slice: TxSlice<u64> = rt.mem().alloc_slice(256);
    let mut th = rt.register_thread();
    let mut rng = WorkloadRng::new(42);
    for _ in 0..2_000 {
        let i = rng.next_below(256) as usize;
        let v = rng.next_u64();
        let cell = slice.get(i);
        let raw_addr = slice.base().offset(i);
        assert_eq!(cell.addr(), raw_addr, "typed cell must be the raw address");
        if rng.draw_percent(50) {
            // Typed write, raw read.
            th.execute(|tx| cell.write(tx, v));
            let got = th.execute(|tx| tx.read(raw_addr));
            assert_eq!(got, v);
        } else {
            // Raw write, typed read.
            th.execute(|tx| tx.write(raw_addr, v));
            let got = th.execute(|tx| cell.read(tx));
            assert_eq!(got, v);
        }
    }
}

/// Running the same access sequence typed and raw produces identical
/// heap contents *and* identical [`TxStats`] — the zero-cost claim at the
/// level the runtimes can observe.
#[test]
fn typed_accesses_cost_exactly_the_raw_statistics() {
    struct Node;
    #[allow(clippy::type_complexity)] // the layout-builder tuple idiom
    const NODE: (
        TxLayout<Node>,
        Field<Node, u64>,
        Field<Node, Option<TxPtr<Node>>>,
    ) = {
        let b = LayoutBuilder::new();
        let (b, value) = b.field();
        let (b, next) = b.field();
        (b.pad_to(4).finish(), value, next)
    };
    impl Record for Node {
        const LAYOUT: TxLayout<Node> = NODE.0;
    }
    const VALUE: Field<Node, u64> = NODE.1;
    const NEXT: Field<Node, Option<TxPtr<Node>>> = NODE.2;

    let world = || {
        rhtm::core::RhRuntime::new(
            MemConfig::with_data_words(4096),
            HtmConfig::default(),
            rhtm::core::RhConfig::rh1_mixed(100),
        )
    };

    // Typed world: build a small linked chain and sum it.
    let rt_typed = world();
    let typed_sum = {
        let mem = rt_typed.mem();
        let mut th = rt_typed.register_thread();
        let mut head: Option<TxPtr<Node>> = None;
        for v in 0..32u64 {
            let node = mem.alloc_record::<Node>();
            let prev = head;
            th.execute(|tx| {
                node.field(VALUE).write(tx, v * 3)?;
                node.field(NEXT).write(tx, prev)?;
                Ok(())
            });
            head = Some(node);
        }
        let sum = th.execute(|tx| {
            let mut sum = 0u64;
            let mut curr = head;
            while let Some(n) = curr {
                sum += n.field(VALUE).read(tx)?;
                curr = n.field(NEXT).read(tx)?;
            }
            Ok(sum)
        });
        (sum, th.stats().clone())
    };

    // Raw world: the word-poking code the typed version replaced.
    let rt_raw = world();
    let raw_sum = {
        let mem = rt_raw.mem();
        let mut th = rt_raw.register_thread();
        let mut head: u64 = NULL_PTR_WORD;
        for v in 0..32u64 {
            let node = mem.alloc(4);
            let prev = head;
            th.execute(|tx| {
                tx.write(node.offset(0), v * 3)?;
                tx.write(node.offset(1), prev)?;
                Ok(())
            });
            head = node.index() as u64;
        }
        let sum = th.execute(|tx| {
            let mut sum = 0u64;
            let mut curr = head;
            while curr != NULL_PTR_WORD {
                let node = Addr(curr as usize);
                sum += tx.read(node.offset(0))?;
                curr = tx.read(node.offset(1))?;
            }
            Ok(sum)
        });
        (sum, th.stats().clone())
    };

    assert_eq!(typed_sum.0, raw_sum.0);
    assert_eq!(
        typed_sum.1, raw_sum.1,
        "typed and raw versions must read/write/commit identically"
    );
    // And the two worlds' heaps hold bit-identical data regions.
    let (a, b) = (rt_typed.mem(), rt_raw.mem());
    let base = a.layout().data_base().index();
    for w in base..a.layout().total_words() {
        assert_eq!(
            a.heap().load(Addr(w)),
            b.heap().load(Addr(w)),
            "heap word {w} diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Dyn erasure: FIGURE_SET parity with the generic path
// ---------------------------------------------------------------------

/// The deterministic workload both paths run: a prefilled hash map and
/// skiplist driven by a fixed-seed operation stream, all through the
/// `_in` composable operations (usable from both `&mut T: TmThread`
/// closures and `&mut dyn Txn`).
const DYN_OPS: usize = 300;

fn build_world() -> (Arc<HtmSim>, TxHashMap, TxSkipList) {
    let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(1 << 16)));
    let sim = HtmSim::new(mem, HtmConfig::default());
    let map = TxHashMap::new(Arc::clone(&sim), 64);
    let list = TxSkipList::new(Arc::clone(&sim), 128);
    // Prefill every key both paths will touch, so `get_in` hits and
    // `set_in` genuinely mutates chains in the parity workload (the
    // single-threaded oracle runtime is discarded before the measured
    // runtime registers its threads).
    {
        let oracle = rhtm::stm::MutexRuntime::with_sim(Arc::clone(&sim));
        let mut th = oracle.register_thread();
        for k in 0..64u64 {
            map.insert(&mut th, k, k * 3);
        }
    }
    for k in 1..=64u64 {
        list.seed_insert(k, k * 7);
    }
    (sim, map, list)
}

/// One deterministic transaction body; `step` keys the shape.
fn run_step<X: Txn + ?Sized>(
    tx: &mut X,
    map: &TxHashMap,
    list: &TxSkipList,
    rng_val: (u64, u64),
) -> rhtm::api::TxResult<u64> {
    let (key_draw, value) = rng_val;
    let map_key = key_draw % 64;
    let list_key = 1 + key_draw % 64;
    let mut acc = 0u64;
    if let Some(v) = map.get_in(tx, map_key)? {
        acc = acc.wrapping_add(v);
    }
    map.set_in(tx, map_key, value)?;
    if let Some(v) = list.get_in(tx, list_key)? {
        acc = acc.wrapping_add(v);
    }
    list.update_in(tx, list_key, value ^ acc)?;
    Ok(acc)
}

/// Pre-draws the operation stream so both paths replay the exact same
/// sequence regardless of how their closures capture the RNG.
fn op_stream() -> Vec<(u64, u64)> {
    let mut rng = WorkloadRng::new(0xd15c);
    (0..DYN_OPS)
        .map(|_| (rng.next_u64(), rng.next_u64()))
        .collect()
}

struct GenericDriver {
    ops: Vec<(u64, u64)>,
    map: TxHashMap,
    list: TxSkipList,
}

impl AlgoVisitor for GenericDriver {
    type Out = (u64, TxStats);

    fn visit<R: TmRuntime>(self, runtime: R) -> (u64, TxStats) {
        let mut th = runtime.register_thread();
        let mut total = 0u64;
        for &drawn in &self.ops {
            total = total.wrapping_add(th.execute(|tx| run_step(tx, &self.map, &self.list, drawn)));
        }
        (total, th.stats().clone())
    }
}

#[test]
fn dyn_erased_runtimes_match_the_generic_path_exactly() {
    // Seed the map through a throwaway oracle runtime first so both paths
    // start from a structurally identical world built the same way.
    for kind in AlgoKind::FIGURE_SET {
        let ops = op_stream();

        // Generic (visitor) path.
        let (sim_a, map_a, list_a) = build_world();
        let (total_a, stats_a) = rhtm_workloads::visit_algo(
            kind,
            sim_a,
            GenericDriver {
                ops: ops.clone(),
                map: map_a,
                list: list_a,
            },
        );

        // Dyn-erased path: the runtime is a value, the body runs through
        // `&mut dyn Txn`.
        let (sim_b, map_b, list_b) = build_world();
        let rt = kind.instantiate_dyn(sim_b);
        let mut th = rt.register_dyn();
        let mut total_b = 0u64;
        for &drawn in &ops {
            total_b = total_b.wrapping_add(th.run(|tx| run_step(tx, &map_b, &list_b, drawn)));
        }
        let stats_b = th.stats().clone();

        assert_eq!(total_a, total_b, "{kind:?}: results diverged");
        assert_eq!(
            stats_a, stats_b,
            "{kind:?}: dyn erasure changed the statistics"
        );
        assert_eq!(stats_a.commits(), DYN_OPS as u64, "{kind:?}");
    }
}

#[test]
fn dyn_threads_drive_structures_concurrently() {
    // The boxed handles are Send: a whole multi-threaded stress over a
    // typed structure without naming a single concrete runtime type.
    let (sim, _map, list) = build_world();
    let rt: Arc<dyn rhtm::api::DynRuntime> =
        Arc::from(AlgoKind::Rh1Mixed(100).instantiate_dyn(sim));
    let list = Arc::new(list);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                let mut th = rt.register_dyn();
                let mut rng = WorkloadRng::new(t as u64);
                for _ in 0..500 {
                    let from = 1 + rng.next_below(64);
                    let to = 1 + rng.next_below(64);
                    if from == to {
                        continue;
                    }
                    // Conserve the total: move one unit between two keys.
                    th.run(|tx| {
                        let f = list.get_in(tx, from)?.expect("seeded");
                        if f == 0 {
                            return Ok(());
                        }
                        let v = list.get_in(tx, to)?.expect("seeded");
                        list.update_in(tx, from, f - 1)?;
                        list.update_in(tx, to, v + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected: u64 = (1..=64u64).map(|k| k * 7).sum();
    let rt2 = Arc::clone(&rt);
    let mut th = rt2.register_dyn();
    let total: u64 = (1..=64u64)
        .map(|k| th.run(|tx| list.get_in(tx, k)).expect("seeded"))
        .sum();
    assert_eq!(total, expected, "transfers must conserve the total");
    assert!(list.is_well_formed_quiescent());
}

// ---------------------------------------------------------------------
// Checked allocation through the typed layer
// ---------------------------------------------------------------------

#[test]
fn typed_checked_allocation_reports_memory_exhaustion_cleanly() {
    let mem = TmMemory::new(MemConfig::with_data_words(8));
    let cell: TxCell<u64> = mem.alloc_cell();
    cell.store(mem.heap(), 5);
    let err = mem
        .try_alloc_record::<AnyRecord>()
        .and(mem.try_alloc_record::<AnyRecord>())
        .and(mem.try_alloc_record::<AnyRecord>())
        .unwrap_err();
    assert_eq!(err.requested, AnyRecord::WORDS);
    assert!(err.to_string().contains("exhausted"));
    // A failed allocation must not have corrupted what is already there.
    assert_eq!(cell.load(mem.heap()), 5);
}
