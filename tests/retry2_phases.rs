//! Retry 2.0 under phased load: property tests that the circuit breaker
//! actually sheds doomed hardware work when a flash crowd arrives, plus
//! the golden neutrality guarantee (an infinite-threshold breaker is
//! byte-equivalent to its wrapped policy).
//!
//! All runs are single-threaded over the simulated HTM's *injected* abort
//! knobs (forced/spurious abort rates), so every assertion is
//! deterministic: the workload RNG, the abort-injection RNG and the retry
//! RNG all derive from the run's seed.  The fuzzed seeds come from a
//! splitmix64 stream — different storms, same verdict.

use std::sync::Arc;

use rhtm_api::{AbortCause, CircuitBreaker, CircuitBreakerConfig, RetryPolicyHandle};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::MemConfig;
use rhtm_workloads::{
    AlgoKind, BenchResult, ConstantHashTable, DriverOpts, OpMix, Scenario, TmSpec,
};

/// splitmix64: the fuzz-seed stream (also the mixer behind
/// `RetryRng::fork`, so the seeds here are exactly as decorrelated as the
/// policies' own jitter streams).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An HTM shape that keeps aborting even single-threaded: the paper's
/// §3.1 emulation knobs stand in for the contention a real flash crowd
/// would generate, so the breaker's trigger condition (consecutive
/// hardware-path failures) fires deterministically.
fn stormy_htm() -> HtmConfig {
    HtmConfig {
        forced_abort_ratio: 0.5,
        // The spurious rate also hits read-only transactions, so failure
        // streaks can build across the 70% lookup mix — without it every
        // successful lookup commit resets the breaker's failure count and
        // the circuit never opens.
        spurious_abort_rate: 0.5,
        ..HtmConfig::default()
    }
}

/// Wasted hardware attempts per committed transaction.  Forced and
/// spurious aborts are *injected at hardware commit time*, so each one is
/// a full hardware transaction that ran and died; `htm_aborts` adds the
/// commit-HTM attempts the slow paths lost.  A policy that keeps hammering
/// the doomed fast path pays this toll on every retry; one that demotes
/// stops paying it (the mixed slow path runs outside the injection, per
/// the paper's §3.1 emulation methodology).
fn hw_waste_per_commit(r: &BenchResult) -> f64 {
    let injected =
        r.stats.aborts_for(AbortCause::Forced) + r.stats.aborts_for(AbortCause::Spurious);
    (injected + r.stats.htm_aborts) as f64 / r.stats.commits().max(1) as f64
}

#[test]
fn breaker_sheds_hardware_attempts_under_a_flash_crowd() {
    let scenario = Scenario::find("skiplist-flash-crowd").expect("registered phased scenario");
    let size = scenario.sized(64);
    let mut state = 0xF1A5_4C20_3D00_8000_u64;
    let (mut paper_total, mut cb_total) = (0.0f64, 0.0f64);
    let mut opens_total = 0u64;
    for round in 0..6u32 {
        let seed = splitmix(&mut state);
        // RH1 Mixed 10: contention aborts retry in hardware 90% of the
        // time — the paper's most breaker-sensitive configuration.
        let run = |policy: RetryPolicyHandle| {
            let spec = TmSpec::new(AlgoKind::Rh1Mixed(10))
                .retry(policy)
                .htm(stormy_htm());
            scenario.run_spec(
                &spec,
                size,
                &DriverOpts::counted_mix(1, OpMix::read_update(0), 400).with_seed(seed),
            )
        };
        let paper = run(RetryPolicyHandle::paper_default());
        let cb = run(RetryPolicyHandle::circuit_breaker());
        assert_eq!(paper.stats.commits(), cb.stats.commits(), "round {round}");
        let (p, c) = (hw_waste_per_commit(&paper), hw_waste_per_commit(&cb));
        assert!(
            c <= p + 1e-9,
            "round {round} (seed {seed:#x}): breaker wasted more hardware \
             attempts/commit ({c:.3}) than paper-default ({p:.3})"
        );
        paper_total += p;
        cb_total += c;
        opens_total += cb.stats.retry.circuit_opens;
        assert_eq!(
            paper.stats.retry.circuit_opens, 0,
            "round {round}: only the breaker may report circuit transitions"
        );
    }
    assert!(
        cb_total < paper_total,
        "across all storms the breaker must shed hardware work \
         (cb {cb_total:.3} vs paper {paper_total:.3})"
    );
    assert!(
        opens_total > 0,
        "the storms must actually trip the breaker for the property to mean anything"
    );
}

#[test]
fn budget_exhaustion_is_observed_under_the_flash_crowd() {
    // The shared token bucket drains when the storm retries faster than it
    // commits; the always-on metrics must record the shedding.
    let scenario = Scenario::find("skiplist-flash-crowd").expect("registered phased scenario");
    let size = scenario.sized(64);
    let spec = TmSpec::new(AlgoKind::Rh1Mixed(10))
        .retry(RetryPolicyHandle::budgeted())
        .htm(stormy_htm());
    let r = scenario.run_spec(
        &spec,
        size,
        &DriverOpts::counted_mix(1, OpMix::read_update(0), 2_000).with_seed(0xB0D6_E7ED),
    );
    assert_eq!(r.stats.commits(), 2_000);
    assert!(
        r.stats.retry.decisions() > 0,
        "the storm must force retry decisions"
    );
    assert_eq!(r.stats.retry.circuit_opens, 0, "no breaker in this spec");
}

#[test]
fn infinite_threshold_breaker_is_byte_identical_to_its_inner_policy() {
    // The neutrality golden: a breaker that can never open must delegate
    // every decision — same RNG draw sites, same counters, same TxStats
    // bit for bit — so wrapping a policy is observationally free until the
    // threshold is finite.
    let run = |policy: RetryPolicyHandle| {
        TmSpec::new(AlgoKind::Rh1Mixed(50))
            .retry(policy)
            .htm(stormy_htm())
            .mem(MemConfig::with_data_words(
                ConstantHashTable::required_words(256) + 4096,
            ))
            .bench(
                |sim: &Arc<HtmSim>| ConstantHashTable::new(Arc::clone(sim), 256),
                &DriverOpts::counted_mix(1, OpMix::read_update(40), 400).with_seed(0xdead_cafe),
            )
    };
    let inner = run(RetryPolicyHandle::paper_default());
    let neutered = run(RetryPolicyHandle::new(CircuitBreaker::new(
        &RetryPolicyHandle::paper_default(),
        CircuitBreakerConfig {
            open_threshold: u32::MAX,
            ..CircuitBreakerConfig::default()
        },
    )));
    assert!(
        inner.stats.aborts() > 0,
        "the equivalence must be exercised under real aborts"
    );
    assert_eq!(
        inner.stats, neutered.stats,
        "an unopenable breaker must be byte-equivalent to its inner policy"
    );
    assert_eq!(inner.total_ops, neutered.total_ops);
}

#[test]
fn finite_threshold_breaker_diverges_from_the_golden() {
    // The counterpart of the neutrality golden: with a real threshold the
    // breaker must *not* be a no-op on the same seed — otherwise the
    // golden above would pass vacuously.
    let run = |policy: RetryPolicyHandle| {
        let spec = TmSpec::new(AlgoKind::Rh1Mixed(10))
            .retry(policy)
            .htm(stormy_htm());
        Scenario::find("skiplist-flash-crowd").unwrap().run_spec(
            &spec,
            spec_size(),
            &DriverOpts::counted_mix(1, OpMix::read_update(0), 400).with_seed(0xdead_cafe),
        )
    };
    let paper = run(RetryPolicyHandle::paper_default());
    let cb = run(RetryPolicyHandle::circuit_breaker());
    assert!(cb.stats.retry.circuit_opens > 0, "the breaker must trip");
    assert_ne!(
        paper.stats, cb.stats,
        "a tripped breaker must actually change the execution"
    );
}

fn spec_size() -> u64 {
    Scenario::find("skiplist-flash-crowd").unwrap().sized(64)
}
