//! The scenario engine, end to end.
//!
//! * **Determinism** — equal seeds must replay bit-identical `(op, key)`
//!   sequences for every key distribution and through the whole driver
//!   (mirroring the fixed-seed guarantees `tests/retry_policies.rs` gives
//!   the contention-management layer).
//! * **Invariant stress** — the two new mutable workloads (transactional
//!   skiplist, bounded FIFO queue) must preserve exact global invariants
//!   (balance conservation, FIFO/per-producer order, well-formed towers)
//!   on **all six** figure algorithms, under real concurrency — mirroring
//!   `tests/clock_schemes.rs` for the clock axis.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rhtm_api::{TmRuntime, TmScopeExt, TmThread};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{MemConfig, TmMemory};
use rhtm_workloads::check::{check_all, record_bank_stress, ScanChecker};
use rhtm_workloads::scenario::Scenario;
use rhtm_workloads::structures::{queue::TxQueue, skiplist::TxSkipList};
use rhtm_workloads::{
    visit_algo, AlgoKind, AlgoVisitor, DriverOpts, KeyDist, OpMix, StructureKind, TxBank,
    WorkloadRng,
};

// ---------------------------------------------------------------------
// Determinism: same seed ⇒ identical operation sequence per distribution
// ---------------------------------------------------------------------

#[test]
fn same_seed_replays_the_same_op_and_key_sequence_for_every_distribution() {
    let mix = OpMix::new([40, 10, 20, 15, 15]);
    for dist in KeyDist::ALL {
        let mut a = WorkloadRng::new(0xfeed);
        let mut b = WorkloadRng::new(0xfeed);
        let mut sa = dist.sampler(4_096, 2, 8);
        let mut sb = dist.sampler(4_096, 2, 8);
        let mut diverged = false;
        let mut c = WorkloadRng::new(0xbeef);
        let mut sc = dist.sampler(4_096, 2, 8);
        for _ in 0..5_000 {
            let (op_a, key_a) = (mix.draw(&mut a), sa.sample(&mut a));
            let (op_b, key_b) = (mix.draw(&mut b), sb.sample(&mut b));
            assert_eq!((op_a, key_a), (op_b, key_b), "{dist:?} diverged");
            let (op_c, key_c) = (mix.draw(&mut c), sc.sample(&mut c));
            diverged |= (op_a, key_a) != (op_c, key_c);
        }
        assert!(diverged, "{dist:?}: different seeds must diverge");
    }
}

#[test]
fn counted_scenario_runs_are_reproducible_for_every_distribution() {
    let base = *Scenario::find("skiplist-uniform").expect("registered");
    for dist in KeyDist::ALL {
        let mut scenario = base;
        scenario.dist = dist;
        let run = || {
            scenario.run(
                AlgoKind::Rh1Mixed(100),
                256,
                &DriverOpts::counted_mix(1, OpMix::read_update(0), 300).with_seed(42),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.total_ops, 300, "{dist:?}");
        assert_eq!(a.stats.reads, b.stats.reads, "{dist:?}: reads");
        assert_eq!(a.stats.writes, b.stats.writes, "{dist:?}: writes");
        assert_eq!(a.stats.commits(), b.stats.commits(), "{dist:?}: commits");
        assert_eq!(a.key_dist, dist.label());
    }
}

// ---------------------------------------------------------------------
// Bank-style invariant stress: skiplist, all six figure algorithms
// ---------------------------------------------------------------------

const ACCOUNTS: u64 = 48;
const BALANCE: u64 = 1_000;

struct SkipListStress {
    list: Arc<TxSkipList>,
}

impl AlgoVisitor for SkipListStress {
    /// The final `(key, value)` snapshot, taken before the runtime drops.
    type Out = Vec<(u64, u64)>;

    fn visit<R: TmRuntime>(self, runtime: R) -> Vec<(u64, u64)> {
        let list = &self.list;
        // Five scoped workers: the first three transfer value between two
        // accounts per transaction (the total is conserved), the last two
        // insert/remove a disjoint key range so the transfers race genuine
        // shape changes.  No spawn/register/join boilerplate: the session
        // scope owns the choreography.
        runtime.scope(5, |session| {
            let t = session.index() as u64;
            if t < 3 {
                let mut rng = WorkloadRng::new(t);
                for _ in 0..600 {
                    let from = 1 + rng.next_below(ACCOUNTS);
                    let to = 1 + rng.next_below(ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let delta = 1 + rng.next_below(7);
                    session.execute(|tx| {
                        let f = list.get_in(tx, from)?.expect("account present");
                        if f < delta {
                            return Ok(());
                        }
                        let v = list.get_in(tx, to)?.expect("account present");
                        list.update_in(tx, from, f - delta)?;
                        list.update_in(tx, to, v + delta)?;
                        Ok(())
                    });
                }
            } else {
                let mut rng = WorkloadRng::new(100 + (t - 3));
                for _ in 0..600 {
                    let key = ACCOUNTS + 1 + rng.next_below(32);
                    if rng.draw_percent(50) {
                        list.insert(session.thread_mut(), key, key);
                    } else {
                        list.remove(session.thread_mut(), key);
                    }
                }
            }
        });
        let mut th = runtime.register_thread();
        self.list.snapshot(&mut th)
    }
}

#[test]
fn skiplist_bank_transfers_conserve_the_total_on_all_six_algorithms() {
    for kind in AlgoKind::FIGURE_SET {
        let words = TxSkipList::required_words(ACCOUNTS + 40, 8) + 4096;
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(words)));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let list = Arc::new(TxSkipList::new(Arc::clone(&sim), ACCOUNTS + 40));
        for k in 1..=ACCOUNTS {
            list.seed_insert(k, BALANCE);
        }
        let snapshot = visit_algo(
            kind,
            sim,
            SkipListStress {
                list: Arc::clone(&list),
            },
        );
        assert!(list.is_well_formed_quiescent(), "{kind:?}: towers broken");
        let total: u64 = snapshot
            .iter()
            .filter(|(k, _)| *k <= ACCOUNTS)
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, ACCOUNTS * BALANCE, "{kind:?}: balance lost");
        // Every account key must still be present (transfers never remove).
        let present = snapshot.iter().filter(|(k, _)| *k <= ACCOUNTS).count();
        assert_eq!(present as u64, ACCOUNTS, "{kind:?}: account vanished");
    }
}

// ---------------------------------------------------------------------
// FIFO invariant stress: queue, all six figure algorithms
// ---------------------------------------------------------------------

struct QueueStress {
    queue: Arc<TxQueue>,
    consumed: Arc<Mutex<Vec<Vec<u64>>>>,
}

const PRODUCERS: u64 = 3;
const PER_PRODUCER: u64 = 400;

impl AlgoVisitor for QueueStress {
    type Out = ();

    fn visit<R: TmRuntime>(self, runtime: R) {
        let queue = &self.queue;
        let consumed = &self.consumed;
        let count = AtomicU64::new(0);
        let count = &count;
        // PRODUCERS + 2 scoped workers: producers enqueue their tagged
        // sequence, the last two drain until every value is accounted for.
        runtime.scope(PRODUCERS as usize + 2, |session| {
            let t = session.index() as u64;
            if t < PRODUCERS {
                for i in 0..PER_PRODUCER {
                    let v = (t << 32) | i;
                    while !queue.enqueue(session.thread_mut(), v) {
                        std::thread::yield_now();
                    }
                }
            } else {
                let mut got = Vec::new();
                let target = PRODUCERS * PER_PRODUCER;
                while count.load(Ordering::Relaxed) < target {
                    match queue.dequeue(session.thread_mut()) {
                        Some(v) => {
                            got.push(v);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
                consumed.lock().unwrap().push(got);
            }
        });
    }
}

#[test]
fn queue_preserves_fifo_and_conserves_values_on_all_six_algorithms() {
    for kind in AlgoKind::FIGURE_SET {
        let capacity = 32u64;
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(
            TxQueue::required_words(capacity) + 4096,
        )));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let queue = Arc::new(TxQueue::new(Arc::clone(&sim), capacity));
        let consumed = Arc::new(Mutex::new(Vec::new()));
        visit_algo(
            kind,
            sim,
            QueueStress {
                queue: Arc::clone(&queue),
                consumed: Arc::clone(&consumed),
            },
        );
        assert_eq!(
            queue.snapshot_quiescent(),
            Vec::<u64>::new(),
            "{kind:?}: queue must drain"
        );
        let all = consumed.lock().unwrap();
        // Conservation: every enqueued value is dequeued exactly once.
        let mut values: Vec<u64> = all.iter().flatten().copied().collect();
        values.sort_unstable();
        let mut want: Vec<u64> = (0..PRODUCERS)
            .flat_map(|t| (0..PER_PRODUCER).map(move |i| (t << 32) | i))
            .collect();
        want.sort_unstable();
        assert_eq!(values, want, "{kind:?}: conservation violated");
        // FIFO: each consumer sees each producer's values in order.
        for got in all.iter() {
            for t in 0..PRODUCERS {
                let seq: Vec<u64> = got
                    .iter()
                    .filter(|v| *v >> 32 == t)
                    .map(|v| v & 0xffff_ffff)
                    .collect();
                assert!(
                    seq.windows(2).all(|w| w[0] < w[1]),
                    "{kind:?}: per-producer FIFO order violated"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Composed transactions through the history checker, all six algorithms
// ---------------------------------------------------------------------

const BANK_ACCOUNTS: u64 = 24;
const BANK_BALANCE: u64 = 500;
const BANK_AUDIT: u64 = 64;

/// Runs the composed-bank stress (OLTP transfers + analytics scans +
/// balance lookups) through the recorded-history checker and returns the
/// violations, so the test can name the algorithm that produced them.
struct BankCheckedStress {
    bank: Arc<TxBank>,
}

impl AlgoVisitor for BankCheckedStress {
    type Out = Vec<String>;

    fn visit<R: TmRuntime>(self, runtime: R) -> Vec<String> {
        let (checker, history) = record_bank_stress(&runtime, &self.bank, 4, 150, 0xA5);
        let scans = ScanChecker {
            expected: self.bank.expected_total(),
        };
        check_all(&history, &[&checker, &scans])
            .iter()
            .map(|v| v.to_string())
            .collect()
    }
}

#[test]
fn composed_bank_histories_check_clean_on_all_six_algorithms() {
    for kind in AlgoKind::FIGURE_SET {
        let words = TxBank::required_words(BANK_ACCOUNTS, BANK_AUDIT, 4) + 4096;
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(words)));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let bank = Arc::new(TxBank::new(
            Arc::clone(&sim),
            BANK_ACCOUNTS,
            BANK_BALANCE,
            BANK_AUDIT,
        ));
        let violations = visit_algo(
            kind,
            sim,
            BankCheckedStress {
                bank: Arc::clone(&bank),
            },
        );
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
        assert!(bank.audit().is_well_formed_quiescent(), "{kind:?}");
    }
}

// ---------------------------------------------------------------------
// New registered scenarios run end-to-end on every figure algorithm
// ---------------------------------------------------------------------

#[test]
fn bank_and_phased_scenarios_run_on_all_six_algorithms() {
    let fresh: Vec<&Scenario> = Scenario::all()
        .iter()
        .filter(|s| s.structure == StructureKind::Bank || s.phases.is_some())
        .collect();
    assert!(fresh.len() >= 6, "expected the six new scenarios");
    for kind in AlgoKind::FIGURE_SET {
        for s in &fresh {
            let size = s.sized(1_024);
            let opts = DriverOpts::counted_mix(2, OpMix::read_update(0), 40).with_seed(11);
            let result = s.run(kind, size, &opts);
            assert_eq!(result.total_ops, 80, "{kind:?}/{}", s.name);
            assert_eq!(result.op_mix, s.mix.label(), "{kind:?}/{}", s.name);
        }
    }
}
