//! # rhtm — reduced-hardware hybrid transactional memory
//!
//! Umbrella crate for the RHTM workspace: it re-exports every sub-crate
//! under one roof so applications can depend on a single crate, and it owns
//! the workspace-level integration tests (`tests/`) and examples
//! (`examples/`).
//!
//! See the workspace `README.md` for the project overview and
//! `docs/ARCHITECTURE.md` for how a transaction flows through the layers.
//!
//! ```
//! use rhtm::api::{TmRuntime, TmThread, Txn};
//! use rhtm::core::{RhConfig, RhRuntime};
//! use rhtm::htm::HtmConfig;
//! use rhtm::mem::MemConfig;
//!
//! let rt = RhRuntime::new(
//!     MemConfig::with_data_words(256),
//!     HtmConfig::default(),
//!     RhConfig::rh1_mixed(100),
//! );
//! let cell = rt.mem().alloc(1);
//! let mut th = rt.register_thread();
//! let v = th.execute(|tx| {
//!     let v = tx.read(cell)?;
//!     tx.write(cell, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(v, 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use rhtm_api as api;
pub use rhtm_core as core;
pub use rhtm_htm as htm;
pub use rhtm_hytm_std as hytm_std;
pub use rhtm_kv as kv;
pub use rhtm_mem as mem;
pub use rhtm_stm as stm;
pub use rhtm_workloads as workloads;
