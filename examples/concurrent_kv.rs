//! A concurrent key-value store driven through the scenario engine: the
//! transactional skiplist under a *zipfian-skewed* operation stream, on
//! the RH1 hybrid runtime.
//!
//! Where this example used to hand-roll its reader/writer loops, it now
//! does what the benchmark suite does: pick a registered scenario
//! (`skiplist-zipf`: mutable skiplist, 70/15/15 lookup/insert/remove,
//! YCSB-style θ=0.99 skew), name the runtime point with a `TmSpec`, let
//! the driver draw `(op, key)` pairs, and read the merged result — then
//! re-runs the same structure under uniform keys to show why the
//! distribution is a first-class axis.
//!
//! ```text
//! cargo run --release --example concurrent_kv
//! ```

use rhtm_api::DynThreadExt;
use rhtm_mem::MemConfig;
use rhtm_workloads::{DriverOpts, KeyDist, OpMix, Scenario, TmSpec, TxSkipList};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 4_096;
const THREADS: usize = 4;

fn main() {
    let scenario = *Scenario::find("skiplist-zipf").expect("registered scenario");
    let spec = TmSpec::parse("rh1-mixed-100").expect("registered spec label");
    println!("scenario         : {}", scenario.name);
    println!("spec             : {}", spec.label());
    println!("structure        : {}", scenario.structure.label());
    println!("operation mix    : {}", scenario.mix.label());
    println!("key distribution : {}", scenario.dist.label());
    println!("description      : {}", scenario.about);
    println!();

    // Run the registered scenario, then the same shape under uniform keys:
    // the engine makes the distribution a one-line change.
    let opts = DriverOpts::timed_mix(THREADS, OpMix::read_update(0), Duration::from_millis(250))
        .with_seed(7);
    for dist in [scenario.dist, KeyDist::Uniform] {
        let mut s = scenario;
        s.dist = dist;
        let result = s.run_spec(&spec, KEYS, &opts);
        println!(
            "{:<12} {:>12.0} ops/s  abort-ratio {:>6.2}%  ({} ops in {:?})",
            result.key_dist,
            result.throughput(),
            result.abort_ratio() * 100.0,
            result.total_ops,
            result.elapsed,
        );
    }

    // The same skiplist API composes into application transactions: a
    // quick consistency check with multi-key transfers under skew, with
    // the worker fan-out as a scoped session over the built spec.
    let instance = spec
        .mem(MemConfig::with_data_words(
            TxSkipList::required_words(KEYS, THREADS) + 4096,
        ))
        .build();
    let list = Arc::new(TxSkipList::new(Arc::clone(instance.sim()), KEYS));
    for k in 1..=64u64 {
        list.seed_insert(k, 1_000);
    }
    let list = &list;
    let commits: u64 = instance
        .scope(THREADS, |session| {
            let t = session.index();
            let mut rng = rhtm_workloads::WorkloadRng::new(t as u64);
            let mut sampler = KeyDist::ZIPF_DEFAULT.sampler(64, t, THREADS);
            let mut commits = 0u64;
            for _ in 0..5_000 {
                let from = 1 + sampler.sample(&mut rng);
                let to = 1 + sampler.sample(&mut rng);
                if from == to {
                    continue;
                }
                session.run(|tx| {
                    let f = list.get_in(tx, from)?.expect("seeded");
                    if f == 0 {
                        return Ok(());
                    }
                    let v = list.get_in(tx, to)?.expect("seeded");
                    list.update_in(tx, from, f - 1)?;
                    list.update_in(tx, to, v + 1)?;
                    Ok(())
                });
                commits += 1;
            }
            commits
        })
        .into_iter()
        .sum();

    let mut th = instance.register();
    let total: u64 = (1..=64u64)
        .map(|k| th.run(|tx| list.get_in(tx, k)).expect("seeded"))
        .sum();
    println!();
    println!("transfer commits : {commits}");
    println!("balance total    : {total} (expected {})", 64 * 1_000);
    assert_eq!(total, 64 * 1_000, "zipfian transfers must conserve balance");
    assert!(list.is_well_formed_quiescent());
    println!("skiplist towers  : well-formed");
}
