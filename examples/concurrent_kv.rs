//! A concurrent key-value store built on the transactional hash map, running
//! on the RH1 hybrid runtime: one writer keeps inserting and deleting while
//! readers run consistent multi-key read transactions.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example concurrent_kv
//! ```

use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;
use rhtm_workloads::mutable::TxHashMap;
use rhtm_workloads::WorkloadRng;

const KEYS: u64 = 1_000;
const WRITERS: usize = 2;
const READERS: usize = 6;
const OPS_PER_WRITER: usize = 30_000;

fn main() {
    let runtime = Arc::new(RhRuntime::new(
        MemConfig::with_data_words(TxHashMap::required_words(2 * KEYS, 400_000)),
        HtmConfig::default(),
        RhConfig::rh1_mixed(100),
    ));
    let map = Arc::new(TxHashMap::new(Arc::clone(runtime.sim()), 2 * KEYS));

    // Every key starts present with value = key * 10.
    {
        let mut th = runtime.register_thread();
        for k in 0..KEYS {
            map.insert(&mut th, k, k * 10);
        }
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Readers: each transaction reads a pair of related keys and checks the
    // invariant the writers maintain (value is either key*10 or key*10+1,
    // and paired keys always carry the same "generation" bit).
    let readers: Vec<_> = (0..READERS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut th = runtime.register_thread();
                let mut rng = WorkloadRng::new(1_000 + tid as u64);
                let mut checked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.next_below(KEYS / 2) * 2;
                    let pair = th.execute(|tx| {
                        let a = map.get_in(tx, k)?;
                        let b = map.get_in(tx, k + 1)?;
                        Ok((a, b))
                    });
                    if let (Some(a), Some(b)) = pair {
                        // Writers flip both keys of a pair in one transaction,
                        // so their generation bits must agree.
                        assert_eq!(a & 1, b & 1, "torn pair observed at key {k}");
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Writers: flip the generation bit of both keys of a random pair inside
    // one transaction.
    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut th = runtime.register_thread();
                let mut rng = WorkloadRng::new(tid as u64);
                let flip = |v: u64| if v & 1 == 0 { v | 1 } else { v & !1 };
                for _ in 0..OPS_PER_WRITER {
                    let k = rng.next_below(KEYS / 2) * 2;
                    // Flip the generation bit of both keys of the pair in a
                    // single transaction, so readers never see them disagree.
                    map_pair_flip(&map, &mut th, k, flip);
                }
                th.stats().commits()
            })
        })
        .collect();

    let mut writer_commits = 0;
    for w in writers {
        writer_commits += w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut reads = 0;
    for r in readers {
        reads += r.join().unwrap();
    }

    let mut th = runtime.register_thread();
    println!("runtime          : {}", runtime.name());
    println!("map size         : {}", map.len(&mut th));
    println!("writer commits   : {writer_commits}");
    println!("reader snapshots : {reads} (all consistent)");
}

/// Atomically flips the generation bit of keys `k` and `k+1`.
fn map_pair_flip<T: TmThread>(map: &TxHashMap, th: &mut T, k: u64, flip: impl Fn(u64) -> u64) {
    th.execute(|tx| {
        let a = map.get_in(tx, k)?.unwrap_or(k * 10);
        let b = map.get_in(tx, k + 1)?.unwrap_or((k + 1) * 10);
        map.set_in(tx, k, flip(a))?;
        map.set_in(tx, k + 1, flip(b))?;
        Ok(())
    });
}
