//! Quickstart: create a reduced-hardware TM runtime, run a few transactions,
//! and look at the execution statistics.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example quickstart
//! ```

use rhtm_api::{PathKind, TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;

fn main() {
    // 1. A shared transactional memory with a simulated best-effort HTM and
    //    the full RH1 protocol (fast-path + mixed slow-path + fallbacks).
    let runtime = RhRuntime::new(
        MemConfig::with_data_words(4096),
        HtmConfig::default(),
        RhConfig::rh1_mixed(100),
    );

    // 2. Allocate two "accounts" in the transactional heap.
    let alice = runtime.mem().alloc(1);
    let bob = runtime.mem().alloc(1);
    runtime.sim().nt_store(alice, 100);
    runtime.sim().nt_store(bob, 100);

    // 3. Register the current thread and run transactions.
    let mut thread = runtime.register_thread();
    for i in 0..1_000u64 {
        let amount = i % 7;
        thread.execute(|tx| {
            let a = tx.read(alice)?;
            if a < amount {
                return Ok(false); // not enough funds; commit a no-op
            }
            let b = tx.read(bob)?;
            tx.write(alice, a - amount)?;
            tx.write(bob, b + amount)?;
            Ok(true)
        });
    }

    // 4. Inspect the result and where the commits happened.
    let total = runtime.sim().nt_load(alice) + runtime.sim().nt_load(bob);
    let stats = thread.stats();
    println!("runtime            : {}", runtime.name());
    println!("total balance      : {total} (must stay 200)");
    println!("commits            : {}", stats.commits());
    println!(
        "  on hardware fast : {}",
        stats.commits_on(PathKind::HardwareFast)
    );
    println!(
        "  on mixed slow    : {}",
        stats.commits_on(PathKind::MixedSlow)
    );
    println!(
        "  on software      : {}",
        stats.commits_on(PathKind::Software)
    );
    println!("aborts             : {}", stats.aborts());
    assert_eq!(total, 200);
}
