//! Quickstart: name a runtime point with `TmSpec`, build it, fan out
//! scoped workers, and look at the execution statistics.
//!
//! One declarative builder replaces the old per-runtime config assembly
//! (`RhConfig` + `MemConfig` + `HtmConfig` + `register_thread` + manual
//! spawn/join): the spec names the point (`rh1-mixed-100+gv-strict+...`),
//! `build()` turns it into a live instance, and `scope(n, ..)` hands each
//! worker its own registered transaction handle.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example quickstart
//! ```

use rhtm_api::{DynThread, DynThreadExt, PathKind};
use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, TmSpec};

const WORKERS: usize = 4;
const TRANSFERS_PER_WORKER: u64 = 1_000;

fn main() {
    // 1. One declarative spec for the whole runtime point: the RH1
    //    protocol with the full cascade, default clock and retry policy.
    //    `TmSpec::parse("rh1-mixed-100")` names the same point from a
    //    string — every benchmark CLI accepts these labels via `spec=`.
    let spec = TmSpec::new(AlgoKind::Rh1Mixed(100)).mem(MemConfig::with_data_words(4096));
    let instance = spec.build();
    println!("spec               : {}", instance.label());

    // 2. Allocate two "accounts" in the transactional heap.
    let alice = instance.mem().alloc(1);
    let bob = instance.mem().alloc(1);
    instance.sim().nt_store(alice, 100);
    instance.sim().nt_store(bob, 100);

    // 3. Fan out scoped workers: registration, the synchronised start and
    //    the joins are the scope's job, not ours.  Each worker returns its
    //    thread's statistics.
    let stats = instance.scope(WORKERS, |session| {
        for i in 0..TRANSFERS_PER_WORKER {
            let amount = (session.index() as u64 + i) % 7;
            session.run(|tx| {
                let a = tx.read(alice)?;
                if a < amount {
                    return Ok(false); // not enough funds; commit a no-op
                }
                let b = tx.read(bob)?;
                tx.write(alice, a - amount)?;
                tx.write(bob, b + amount)?;
                Ok(true)
            });
        }
        DynThread::stats(&***session).clone()
    });

    // 4. Inspect the result and where the commits happened.
    let total = instance.sim().nt_load(alice) + instance.sim().nt_load(bob);
    let mut merged = rhtm_api::TxStats::new(false);
    for s in &stats {
        merged.merge(s);
    }
    println!("workers            : {WORKERS}");
    println!("total balance      : {total} (must stay 200)");
    println!("commits            : {}", merged.commits());
    println!(
        "  on hardware fast : {}",
        merged.commits_on(PathKind::HardwareFast)
    );
    println!(
        "  on mixed slow    : {}",
        merged.commits_on(PathKind::MixedSlow)
    );
    println!(
        "  on software      : {}",
        merged.commits_on(PathKind::Software)
    );
    println!("aborts             : {}", merged.aborts());
    assert_eq!(total, 200);
    assert_eq!(
        merged.commits(),
        WORKERS as u64 * TRANSFERS_PER_WORKER,
        "every transfer transaction must commit exactly once"
    );
}
