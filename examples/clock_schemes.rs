//! Compares the global-clock advancement schemes on the bank-transfer
//! workload: same transactions, same contention, different clock discipline.
//!
//! The strict scheme pays one fetch-and-add on the shared clock line per
//! writing software commit; GV4 relaxes it to a fail-soft CAS, GV5 skips it
//! entirely (paying false aborts instead), GV6 samples between the two, and
//! the incrementing baseline shows what happens when even hardware
//! transactions write the clock.
//!
//! Each point is one `TmSpec` (`tl2+gv5`, `rh1-mixed-100+gv6`, ...) — the
//! clock is just a spec axis — and the worker fan-out is a scoped session.
//!
//! ```text
//! cargo run --release --example clock_schemes
//! ```

use rhtm_api::{DynThread, DynThreadExt};
use rhtm_mem::{Addr, ClockScheme, MemConfig};
use rhtm_workloads::{AlgoKind, TmSpec, WorkloadRng};

const ACCOUNTS: usize = 32;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 10_000;
const INITIAL_BALANCE: u64 = 1_000;

/// Runs the bank workload on the spec'd runtime point and returns
/// (ops/s, abort ratio).
fn run_bank(spec: TmSpec) -> (f64, f64) {
    let instance = spec.mem(MemConfig::with_data_words(8192)).build();
    let accounts: Vec<Addr> = (0..ACCOUNTS).map(|_| instance.mem().alloc(8)).collect();
    for &a in &accounts {
        instance.sim().nt_store(a, INITIAL_BALANCE);
    }
    let accounts = &accounts;

    let started = std::time::Instant::now();
    let per_thread = instance.scope(THREADS, |session| {
        let mut rng = WorkloadRng::new(session.index() as u64 * 31 + 7);
        for _ in 0..TRANSFERS_PER_THREAD {
            let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            if from == to {
                continue;
            }
            session.run(|tx| {
                let f = tx.read(from)?;
                if f == 0 {
                    return Ok(());
                }
                let t = tx.read(to)?;
                tx.write(from, f - 1)?;
                tx.write(to, t + 1)?;
                Ok(())
            });
        }
        DynThread::stats(&***session).clone()
    });
    let mut stats = rhtm_api::TxStats::new(false);
    for s in &per_thread {
        stats.merge(s);
    }
    let elapsed = started.elapsed();

    // The invariant every scheme must preserve.
    let total: u64 = accounts.iter().map(|&a| instance.sim().nt_load(a)).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL_BALANCE, "balance lost!");

    (
        stats.commits() as f64 / elapsed.as_secs_f64(),
        stats.abort_ratio(),
    )
}

fn main() {
    println!(
        "bank transfer: {ACCOUNTS} accounts, {THREADS} threads x {TRANSFERS_PER_THREAD} transfers\n"
    );
    println!(
        "{:<14} {:>16} {:>12}   {:>16} {:>12}",
        "scheme", "TL2 ops/s", "TL2 aborts", "RH1 ops/s", "RH1 aborts"
    );
    for scheme in ClockScheme::ALL {
        let (tl2_tp, tl2_ar) = run_bank(TmSpec::new(AlgoKind::Tl2).clock(scheme));
        let (rh1_tp, rh1_ar) = run_bank(TmSpec::new(AlgoKind::Rh1Mixed(100)).clock(scheme));

        println!(
            "{:<14} {:>16.0} {:>11.2}%   {:>16.0} {:>11.2}%",
            scheme.label(),
            tl2_tp,
            tl2_ar * 100.0,
            rh1_tp,
            rh1_ar * 100.0
        );
    }
    println!("\ntotal balance conserved under every scheme ✓");
}
