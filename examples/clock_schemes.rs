//! Compares the global-clock advancement schemes on the bank-transfer
//! workload: same transactions, same contention, different clock discipline.
//!
//! The strict scheme pays one fetch-and-add on the shared clock line per
//! writing software commit; GV4 relaxes it to a fail-soft CAS, GV5 skips it
//! entirely (paying false aborts instead), GV6 samples between the two, and
//! the incrementing baseline shows what happens when even hardware
//! transactions write the clock.
//!
//! ```text
//! cargo run --release --example clock_schemes
//! ```

use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::{Addr, ClockScheme, MemConfig};
use rhtm_stm::Tl2Runtime;
use rhtm_workloads::WorkloadRng;

const ACCOUNTS: usize = 32;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 10_000;
const INITIAL_BALANCE: u64 = 1_000;

/// Runs the bank workload and returns (ops/s, abort ratio).
fn run_bank<R: TmRuntime>(runtime: Arc<R>) -> (f64, f64) {
    let accounts: Arc<Vec<Addr>> =
        Arc::new((0..ACCOUNTS).map(|_| runtime.mem().alloc(8)).collect());
    for &a in accounts.iter() {
        runtime.mem().heap().store(a, INITIAL_BALANCE);
    }

    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut thread = runtime.register_thread();
                let mut rng = WorkloadRng::new(tid as u64 * 31 + 7);
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    if from == to {
                        continue;
                    }
                    thread.execute(|tx| {
                        let f = tx.read(from)?;
                        if f == 0 {
                            return Ok(());
                        }
                        let t = tx.read(to)?;
                        tx.write(from, f - 1)?;
                        tx.write(to, t + 1)?;
                        Ok(())
                    });
                }
                thread.stats().clone()
            })
        })
        .collect();
    let mut stats = rhtm_api::TxStats::new(false);
    for h in handles {
        stats.merge(&h.join().unwrap());
    }
    let elapsed = started.elapsed();

    // The invariant every scheme must preserve.
    let total: u64 = accounts.iter().map(|&a| runtime.mem().heap().load(a)).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL_BALANCE, "balance lost!");

    (
        stats.commits() as f64 / elapsed.as_secs_f64(),
        stats.abort_ratio(),
    )
}

fn main() {
    println!(
        "bank transfer: {ACCOUNTS} accounts, {THREADS} threads x {TRANSFERS_PER_THREAD} transfers\n"
    );
    println!(
        "{:<14} {:>16} {:>12}   {:>16} {:>12}",
        "scheme", "TL2 ops/s", "TL2 aborts", "RH1 ops/s", "RH1 aborts"
    );
    for scheme in ClockScheme::ALL {
        let mem = || MemConfig {
            clock_scheme: scheme,
            ..MemConfig::with_data_words(8192)
        };

        let tl2 = Arc::new(Tl2Runtime::new(mem()));
        let (tl2_tp, tl2_ar) = run_bank(tl2);

        let rh1 = Arc::new(RhRuntime::new(
            mem(),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        ));
        let (rh1_tp, rh1_ar) = run_bank(rh1);

        println!(
            "{:<14} {:>16.0} {:>11.2}%   {:>16.0} {:>11.2}%",
            scheme.label(),
            tl2_tp,
            tl2_ar * 100.0,
            rh1_tp,
            rh1_ar * 100.0
        );
    }
    println!("\ntotal balance conserved under every scheme ✓");
}
