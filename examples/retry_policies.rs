//! Compares the retry policies on the bank-transfer workload at 8 threads:
//! same transactions, same contention, different contention management.
//!
//! `paper-default` reproduces the paper's thresholds; `capped-exp` adds
//! jittered exponential backoff so colliding threads do not retry in
//! lockstep; `aggressive` never gives up a hardware path for contention;
//! `adaptive` demotes on the first abort once the fallback counters show
//! the cascade is already degraded.  The RH1 runtime uses a small hardware
//! write capacity so the cascade (and therefore the demotion decisions)
//! actually fires; stand-alone RH2 brackets it from the other side.
//!
//! Each point is one `TmSpec` (`rh1-mixed-100+adaptive`, `rh2+capped-exp`,
//! ...) — the policy is just a spec axis — and the worker fan-out is a
//! scoped session.
//!
//! ```text
//! cargo run --release --example retry_policies
//! ```

use rhtm_api::{DynThread, DynThreadExt, PathKind, RetryPolicyHandle};
use rhtm_htm::HtmConfig;
use rhtm_mem::{Addr, MemConfig};
use rhtm_workloads::{AlgoKind, TmSpec, WorkloadRng};

const ACCOUNTS: usize = 32;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 4_000;
const INITIAL_BALANCE: u64 = 1_000;

struct Outcome {
    ops_per_sec: f64,
    abort_ratio: f64,
    software_share: f64,
}

/// Runs the bank workload and returns throughput, abort ratio and the
/// share of commits that ended up below the hardware fast-path.
fn run_bank(spec: TmSpec) -> Outcome {
    let instance = spec.mem(MemConfig::with_data_words(8192)).build();
    let accounts: Vec<Addr> = (0..ACCOUNTS).map(|_| instance.mem().alloc(8)).collect();
    for &a in &accounts {
        instance.sim().nt_store(a, INITIAL_BALANCE);
    }
    let accounts = &accounts;

    let started = std::time::Instant::now();
    let per_thread = instance.scope(THREADS, |session| {
        let mut rng = WorkloadRng::new(session.index() as u64 * 77 + 13);
        for _ in 0..TRANSFERS_PER_THREAD {
            let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            if from == to {
                continue;
            }
            session.run(|tx| {
                let f = tx.read(from)?;
                if f == 0 {
                    return Ok(());
                }
                let t = tx.read(to)?;
                tx.write(from, f - 1)?;
                tx.write(to, t + 1)?;
                Ok(())
            });
        }
        DynThread::stats(&***session).clone()
    });
    let mut stats = rhtm_api::TxStats::new(false);
    for s in &per_thread {
        stats.merge(s);
    }
    let elapsed = started.elapsed();

    // The invariant every policy must preserve.
    let total: u64 = accounts.iter().map(|&a| instance.sim().nt_load(a)).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL_BALANCE, "balance lost!");

    let commits = stats.commits().max(1);
    Outcome {
        ops_per_sec: stats.commits() as f64 / elapsed.as_secs_f64(),
        abort_ratio: stats.abort_ratio(),
        software_share: (commits - stats.commits_on(PathKind::HardwareFast)) as f64
            / commits as f64,
    }
}

fn main() {
    println!(
        "bank transfer: {ACCOUNTS} accounts, {THREADS} threads x {TRANSFERS_PER_THREAD} transfers\n"
    );
    println!(
        "{:<14} {:>14} {:>10} {:>10}   {:>14} {:>10} {:>10}",
        "policy", "RH1 ops/s", "aborts", "demoted", "RH2 ops/s", "aborts", "demoted"
    );
    for policy in RetryPolicyHandle::builtin() {
        // A small write capacity keeps the RH cascade (and its demotion
        // decisions) busy.
        let rh1_out = run_bank(
            TmSpec::new(AlgoKind::Rh1Mixed(100))
                .retry(policy.clone())
                .htm(HtmConfig::with_capacity(512, 16)),
        );
        let rh2_out = run_bank(TmSpec::new(AlgoKind::Rh2).retry(policy.clone()));

        println!(
            "{:<14} {:>14.0} {:>9.2}% {:>9.2}%   {:>14.0} {:>9.2}% {:>9.2}%",
            policy.label(),
            rh1_out.ops_per_sec,
            rh1_out.abort_ratio * 100.0,
            rh1_out.software_share * 100.0,
            rh2_out.ops_per_sec,
            rh2_out.abort_ratio * 100.0,
            rh2_out.software_share * 100.0,
        );
    }
    println!("\ntotal balance conserved under every policy ✓");
}
