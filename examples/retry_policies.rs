//! Compares the retry policies on the bank-transfer workload at 8 threads:
//! same transactions, same contention, different contention management.
//!
//! `paper-default` reproduces the paper's thresholds; `capped-exp` adds
//! jittered exponential backoff so colliding threads do not retry in
//! lockstep; `aggressive` never gives up a hardware path for contention;
//! `adaptive` demotes on the first abort once the fallback counters show
//! the cascade is already degraded.  The run uses a small hardware write
//! capacity so the RH cascade (and therefore the demotion decisions)
//! actually fires.
//!
//! ```text
//! cargo run --release --example retry_policies
//! ```

use std::sync::Arc;

use rhtm_api::{PathKind, RetryPolicyHandle, TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{Addr, MemConfig};
use rhtm_workloads::WorkloadRng;

const ACCOUNTS: usize = 32;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 4_000;
const INITIAL_BALANCE: u64 = 1_000;

struct Outcome {
    ops_per_sec: f64,
    abort_ratio: f64,
    software_share: f64,
}

/// Runs the bank workload and returns throughput, abort ratio and the
/// share of commits that ended up below the hardware fast-path.
fn run_bank<R: TmRuntime>(runtime: Arc<R>) -> Outcome {
    let accounts: Arc<Vec<Addr>> =
        Arc::new((0..ACCOUNTS).map(|_| runtime.mem().alloc(8)).collect());
    for &a in accounts.iter() {
        runtime.mem().heap().store(a, INITIAL_BALANCE);
    }

    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut thread = runtime.register_thread();
                let mut rng = WorkloadRng::new(tid as u64 * 77 + 13);
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    if from == to {
                        continue;
                    }
                    thread.execute(|tx| {
                        let f = tx.read(from)?;
                        if f == 0 {
                            return Ok(());
                        }
                        let t = tx.read(to)?;
                        tx.write(from, f - 1)?;
                        tx.write(to, t + 1)?;
                        Ok(())
                    });
                }
                thread.stats().clone()
            })
        })
        .collect();
    let mut stats = rhtm_api::TxStats::new(false);
    for h in handles {
        stats.merge(&h.join().unwrap());
    }
    let elapsed = started.elapsed();

    // The invariant every policy must preserve.
    let total: u64 = accounts.iter().map(|&a| runtime.mem().heap().load(a)).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL_BALANCE, "balance lost!");

    let commits = stats.commits().max(1);
    Outcome {
        ops_per_sec: stats.commits() as f64 / elapsed.as_secs_f64(),
        abort_ratio: stats.abort_ratio(),
        software_share: (commits - stats.commits_on(PathKind::HardwareFast)) as f64
            / commits as f64,
    }
}

fn main() {
    println!(
        "bank transfer: {ACCOUNTS} accounts, {THREADS} threads x {TRANSFERS_PER_THREAD} transfers\n"
    );
    println!(
        "{:<14} {:>14} {:>10} {:>10}   {:>14} {:>10} {:>10}",
        "policy", "RH1 ops/s", "aborts", "demoted", "HyTM ops/s", "aborts", "demoted"
    );
    for policy in RetryPolicyHandle::builtin() {
        // A small write capacity keeps the RH cascade (and its demotion
        // decisions) busy.
        let rh1 = Arc::new(RhRuntime::new(
            MemConfig::with_data_words(8192),
            HtmConfig::with_capacity(512, 16),
            RhConfig::rh1_mixed(100).with_retry_policy(policy.clone()),
        ));
        let rh1_out = run_bank(rh1);

        let hytm = Arc::new(StdHytmRuntime::new(
            MemConfig::with_data_words(8192),
            HtmConfig::default(),
            StdHytmConfig {
                hardware_only: false,
                hw_retries: 2,
                retry_policy: policy.clone(),
            },
        ));
        let hytm_out = run_bank(hytm);

        println!(
            "{:<14} {:>14.0} {:>9.2}% {:>9.2}%   {:>14.0} {:>9.2}% {:>9.2}%",
            policy.label(),
            rh1_out.ops_per_sec,
            rh1_out.abort_ratio * 100.0,
            rh1_out.software_share * 100.0,
            hytm_out.ops_per_sec,
            hytm_out.abort_ratio * 100.0,
            hytm_out.software_share * 100.0,
        );
    }
    println!("\ntotal balance conserved under every policy ✓");
}
