//! Demonstrates the multi-level fallback cascade: transactions that cannot
//! run in hardware (too long, or containing a protected instruction) fall
//! back to the mixed slow-path, the RH2 commit, or the all-software
//! write-back — and the statistics show which path each commit took.
//!
//! The runtime point is named declaratively: a `TmSpec` with a
//! deliberately tiny HTM capacity, built into a live instance — no
//! per-runtime config structs, no `register_thread` plumbing.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example fallback_cascade
//! ```

use rhtm_api::{DynThreadExt, PathKind};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, TmSpec};

fn report(label: &str, stats: &rhtm_api::TxStats) {
    println!(
        "{label:<34} commits: hw-fast {:>5}  mixed-slow {:>5}  software {:>5}   aborts: capacity {:>5}, unsupported {:>4}",
        stats.commits_on(PathKind::HardwareFast),
        stats.commits_on(PathKind::MixedSlow),
        stats.commits_on(PathKind::Software),
        stats.aborts_for(rhtm_api::AbortCause::Capacity),
        stats.aborts_for(rhtm_api::AbortCause::Unsupported),
    );
}

fn main() {
    // A deliberately tiny hardware capacity (8 cache lines readable, 4
    // writable) so that medium transactions overflow the fast-path, and some
    // overflow even the RH1 slow-path commit.
    let instance = TmSpec::new(AlgoKind::Rh1Mixed(100))
        .mem(MemConfig::with_data_words(64 * 1024))
        .htm(HtmConfig::with_capacity(8, 4))
        .build();
    println!("spec: {}\n", instance.label());
    let base = instance.mem().alloc(32 * 1024);
    let mut thread = instance.register();

    // 1. Small transactions: fit the fast-path.
    for i in 0..500u64 {
        thread.run(|tx| {
            let v = tx.read(base.offset((i % 16) as usize))?;
            tx.write(base.offset((i % 16) as usize), v + 1)?;
            Ok(())
        });
    }
    report("small transactions", thread.stats());
    thread.stats_mut().reset();

    // 2. Long read-set transactions: overflow the fast-path but fit the
    //    mixed slow-path (its commit only touches the 4x smaller metadata).
    for round in 0..200u64 {
        thread.run(|tx| {
            let mut sum = 0u64;
            for i in 0..24 {
                // Wrapping: the sums written below feed back into later
                // reads and grow geometrically over the rounds.
                sum = sum.wrapping_add(tx.read(base.offset((i * 8) as usize))?);
            }
            tx.write(base.offset((round % 8) as usize * 8), sum)?;
            Ok(())
        });
    }
    report("long read-set transactions", thread.stats());
    thread.stats_mut().reset();

    // 3. Transactions with a protected instruction (system call, page fault,
    //    ...): can never run in hardware, always end up on the slow-path.
    for i in 0..200u64 {
        thread.run(|tx| {
            tx.protected_instruction()?;
            let v = tx.read(base.offset(1024 + (i % 4) as usize))?;
            tx.write(base.offset(1024 + (i % 4) as usize), v + 1)?;
            Ok(())
        });
    }
    report("protected-instruction transactions", thread.stats());
    thread.stats_mut().reset();

    // 4. Very wide write-sets: too big even for the RH2 hardware write-back,
    //    forcing the all-software slow-slow-path.
    for round in 0..50u64 {
        thread.run(|tx| {
            for i in 0..48 {
                tx.write(base.offset(4096 + i * 8), round)?;
            }
            Ok(())
        });
    }
    report("very wide write-set transactions", thread.stats());

    println!("\nthe cascade degrades gracefully: every transaction committed on the cheapest path able to run it");
}
