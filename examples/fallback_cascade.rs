//! Demonstrates the multi-level fallback cascade: transactions that cannot
//! run in hardware (too long, or containing a protected instruction) fall
//! back to the mixed slow-path, the RH2 commit, or the all-software
//! write-back — and the statistics show which path each commit took.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example fallback_cascade
//! ```

use rhtm_api::{PathKind, TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::HtmConfig;
use rhtm_mem::MemConfig;

fn report(label: &str, stats: &rhtm_api::TxStats) {
    println!(
        "{label:<34} commits: hw-fast {:>5}  mixed-slow {:>5}  software {:>5}   aborts: capacity {:>5}, unsupported {:>4}",
        stats.commits_on(PathKind::HardwareFast),
        stats.commits_on(PathKind::MixedSlow),
        stats.commits_on(PathKind::Software),
        stats.aborts_for(rhtm_api::AbortCause::Capacity),
        stats.aborts_for(rhtm_api::AbortCause::Unsupported),
    );
}

fn main() {
    // A deliberately tiny hardware capacity (8 cache lines readable, 4
    // writable) so that medium transactions overflow the fast-path, and some
    // overflow even the RH1 slow-path commit.
    let runtime = RhRuntime::new(
        MemConfig::with_data_words(64 * 1024),
        HtmConfig::with_capacity(8, 4),
        RhConfig::rh1_mixed(100),
    );
    let base = runtime.mem().alloc(32 * 1024);
    let mut thread = runtime.register_thread();

    // 1. Small transactions: fit the fast-path.
    for i in 0..500u64 {
        thread.execute(|tx| {
            let v = tx.read(base.offset((i % 16) as usize))?;
            tx.write(base.offset((i % 16) as usize), v + 1)?;
            Ok(())
        });
    }
    report("small transactions", thread.stats());
    thread.stats_mut().reset();

    // 2. Long read-set transactions: overflow the fast-path but fit the
    //    mixed slow-path (its commit only touches the 4x smaller metadata).
    for round in 0..200u64 {
        thread.execute(|tx| {
            let mut sum = 0u64;
            for i in 0..24 {
                sum += tx.read(base.offset((i * 8) as usize))?;
            }
            tx.write(base.offset((round % 8) as usize * 8), sum)?;
            Ok(())
        });
    }
    report("long read-set transactions", thread.stats());
    thread.stats_mut().reset();

    // 3. Transactions with a protected instruction (system call, page fault,
    //    ...): can never run in hardware, always end up on the slow-path.
    for i in 0..200u64 {
        thread.execute(|tx| {
            tx.protected_instruction()?;
            let v = tx.read(base.offset(1024 + (i % 4) as usize))?;
            tx.write(base.offset(1024 + (i % 4) as usize), v + 1)?;
            Ok(())
        });
    }
    report("protected-instruction transactions", thread.stats());
    thread.stats_mut().reset();

    // 4. Very wide write-sets: too big even for the RH2 hardware write-back,
    //    forcing the all-software slow-slow-path.
    for round in 0..50u64 {
        thread.execute(|tx| {
            for i in 0..48 {
                tx.write(base.offset(4096 + i * 8), round)?;
            }
            Ok(())
        });
    }
    report("very wide write-set transactions", thread.stats());

    println!("\nthe cascade degrades gracefully: every transaction committed on the cheapest path able to run it");
}
