//! The canonical "how to write a transactional structure" sample, on the
//! typed + dyn APIs (referenced from `docs/BENCHMARKS.md`'s add-a-scenario
//! walkthrough).
//!
//! It builds a small sorted linked *multiset counter* from scratch:
//!
//! 1. declare the node record once with [`LayoutBuilder`] — no offset
//!    constants, no `encode_ptr` helpers;
//! 2. write the operations against `&mut X: Txn + ?Sized`, so the same
//!    code runs monomorphised inside a benchmark *and* through
//!    `&mut dyn Txn` in tests;
//! 3. drive it through `Box<dyn DynRuntime>` values from
//!    [`AlgoKind::instantiate_dyn`] — no visitor structs, just a loop over
//!    algorithms.
//!
//! ```text
//! cargo run --release --example typed_list
//! ```

use std::sync::Arc;

use rhtm::api::typed::{Field, LayoutBuilder, Record, TxCell, TxLayout, TxPtr, TypedAlloc};
use rhtm::api::{DynRuntime, DynThreadExt, TxResult, Txn};
use rhtm::htm::{HtmConfig, HtmSim};
use rhtm::mem::{MemConfig, TmMemory};
use rhtm_workloads::AlgoKind;

// -- 1. The record -----------------------------------------------------

/// One list node: a key, an occurrence counter, and the next link.
struct Node;

type Link = Option<TxPtr<Node>>;

/// The layout is built once, in a const; the builder assigns the offsets.
#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<Node>,
    Field<Node, u64>,
    Field<Node, u64>,
    Field<Node, Link>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, count) = b.field();
    let (b, next) = b.field();
    (b.pad_to(4).finish(), key, count, next)
};
const KEY: Field<Node, u64> = NODE.1;
const COUNT: Field<Node, u64> = NODE.2;
const NEXT: Field<Node, Link> = NODE.3;

impl Record for Node {
    const LAYOUT: TxLayout<Node> = NODE.0;
}

// -- 2. The structure --------------------------------------------------

/// A sorted singly-linked multiset: `add` counts occurrences per key.
struct TypedList {
    mem: Arc<TmMemory>,
    head: TxCell<Link>,
}

impl TypedList {
    fn new(mem: Arc<TmMemory>) -> Self {
        let head: TxCell<Link> = mem.alloc_cell();
        head.store(mem.heap(), None);
        TypedList { mem, head }
    }

    /// In-transaction add: bumps the key's counter, inserting its node in
    /// sorted position on first sight.  `spare` is pre-allocated outside
    /// the transaction (aborted retries must not allocate again); an
    /// unused spare is reported back so the caller can reuse it.
    fn add_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, spare: TxPtr<Node>) -> TxResult<bool> {
        // Find the first node with `node.key >= key` (pred stays None at
        // the head cell).
        let mut pred: Link = None;
        let mut curr = self.head.read(tx)?;
        while let Some(n) = curr {
            let k = n.field(KEY).read(tx)?;
            if k == key {
                let c = n.field(COUNT).read(tx)?;
                n.field(COUNT).write(tx, c + 1)?;
                return Ok(false); // spare unused
            }
            if k > key {
                break;
            }
            pred = curr;
            curr = n.field(NEXT).read(tx)?;
        }
        // Link the spare in sorted position.
        spare.field(KEY).write(tx, key)?;
        spare.field(COUNT).write(tx, 1)?;
        spare.field(NEXT).write(tx, curr)?;
        match pred {
            Some(p) => p.field(NEXT).write(tx, Some(spare))?,
            None => self.head.write(tx, Some(spare))?,
        }
        Ok(true) // spare consumed
    }

    /// In-transaction counter lookup.
    fn count_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<u64> {
        let mut curr = self.head.read(tx)?;
        while let Some(n) = curr {
            let k = n.field(KEY).read(tx)?;
            if k == key {
                return n.field(COUNT).read(tx);
            }
            if k > key {
                break;
            }
            curr = n.field(NEXT).read(tx)?;
        }
        Ok(0)
    }

    /// In-transaction total of all counters (a small read-only scan).
    fn total_in<X: Txn + ?Sized>(&self, tx: &mut X) -> TxResult<u64> {
        let mut total = 0;
        let mut curr = self.head.read(tx)?;
        while let Some(n) = curr {
            total += n.field(COUNT).read(tx)?;
            curr = n.field(NEXT).read(tx)?;
        }
        Ok(total)
    }

    /// Checked pre-allocation for `add_in` (the typed layer's
    /// `Result`-returning path turns sizing bugs into readable errors).
    fn alloc_node(&self) -> TxPtr<Node> {
        self.mem
            .try_alloc_record::<Node>()
            .expect("size the heap for the expected number of distinct keys")
    }
}

// -- 3. Driving it through dyn-erased runtimes -------------------------

const THREADS: usize = 4;
const ADDS_PER_THREAD: usize = 2_000;
const KEYS: u64 = 97;

fn main() {
    println!("typed_list: sorted multiset counter on the typed + dyn APIs");
    println!("{THREADS} threads x {ADDS_PER_THREAD} adds over {KEYS} keys, per algorithm:");
    println!();

    for kind in [
        AlgoKind::Htm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Mixed(100),
        AlgoKind::Rh2,
    ] {
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(1 << 14)));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let list = Arc::new(TypedList::new(Arc::clone(sim.mem())));

        // The runtime is a value — no visitor struct, no generics.
        let rt: Arc<dyn DynRuntime> = Arc::from(kind.instantiate_dyn(sim));

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut th = rt.register_dyn();
                    let mut rng = rhtm_workloads::WorkloadRng::new(t as u64);
                    let mut spare = list.alloc_node();
                    for _ in 0..ADDS_PER_THREAD {
                        let key = rng.next_below(KEYS);
                        let used = th.run(|tx| list.add_in(tx, key, spare));
                        if used {
                            spare = list.alloc_node();
                        }
                    }
                    (th.stats().commits(), th.stats().aborts())
                })
            })
            .collect();
        let (commits, aborts) = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(c, a), (tc, ta)| (c + tc, a + ta));

        let mut th = rt.register_dyn();
        let total = th.run(|tx| list.total_in(tx));
        let sample = th.run(|tx| list.count_in(tx, 13));
        assert_eq!(total, (THREADS * ADDS_PER_THREAD) as u64);
        println!(
            "  {:<14} total {total} (expected {}), count(13) = {sample}, \
             {commits} commits, {aborts} aborts",
            rt.name(),
            THREADS * ADDS_PER_THREAD,
        );
    }
    println!();
    println!("every algorithm conserved the multiset total — same structure");
    println!("code, zero per-structure offset/pointer-encoding boilerplate.");
}
