//! A concurrent bank: many threads transfer money between shared accounts
//! under every runtime in the workspace, and the total balance is checked at
//! the end — the classic TM litmus test.
//!
//! Every runtime point is named by a `TmSpec` label and built through the
//! spec; the worker fan-out is a scoped session (`instance.scope`), so
//! there is no per-runtime config assembly and no spawn/join boilerplate
//! anywhere in the example.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example bank_transfer
//! ```

use rhtm_api::{DynThread, DynThreadExt};
use rhtm_mem::{Addr, MemConfig};
use rhtm_workloads::{TmInstance, TmSpec, WorkloadRng};

const ACCOUNTS: usize = 64;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 20_000;
const INITIAL_BALANCE: u64 = 1_000;

fn run_bank(instance: &TmInstance) {
    let accounts: Vec<Addr> = (0..ACCOUNTS).map(|_| instance.mem().alloc(8)).collect();
    for &a in &accounts {
        instance.sim().nt_store(a, INITIAL_BALANCE);
    }
    let accounts = &accounts;

    let started = std::time::Instant::now();
    let outcomes = instance.scope(THREADS, |session| {
        let mut rng = WorkloadRng::new(session.index() as u64);
        for _ in 0..TRANSFERS_PER_THREAD {
            let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
            if from == to {
                continue;
            }
            let amount = rng.next_below(10);
            session.run(|tx| {
                let f = tx.read(from)?;
                if f < amount {
                    return Ok(());
                }
                let t = tx.read(to)?;
                tx.write(from, f - amount)?;
                tx.write(to, t + amount)?;
                Ok(())
            });
        }
        let stats = DynThread::stats(&***session);
        (stats.commits(), stats.aborts())
    });

    let commits: u64 = outcomes.iter().map(|(c, _)| c).sum();
    let aborts: u64 = outcomes.iter().map(|(_, a)| a).sum();
    let elapsed = started.elapsed();
    let total: u64 = accounts.iter().map(|&a| instance.sim().nt_load(a)).sum();
    let expected = (ACCOUNTS as u64) * INITIAL_BALANCE;
    println!(
        "{:<40} total={total} (expected {expected})  commits={commits}  aborts={aborts}  {:>8.0} txn/s",
        instance.label(),
        commits as f64 / elapsed.as_secs_f64(),
    );
    assert_eq!(
        total,
        expected,
        "{} lost or created money!",
        instance.label()
    );
}

fn main() {
    println!("{THREADS} threads x {TRANSFERS_PER_THREAD} transfers over {ACCOUNTS} accounts\n");
    for label in [
        "htm",
        "tl2",
        "standard-hytm",
        "rh1-fast",
        "rh1-mixed-100",
        "rh2",
    ] {
        let spec = TmSpec::parse(label)
            .expect("registered spec label")
            .mem(MemConfig::with_data_words(16 * 1024));
        run_bank(&spec.build());
    }
    println!("\nevery runtime preserved the total balance");
}
