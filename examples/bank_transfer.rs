//! A concurrent bank: many threads transfer money between shared accounts
//! under every runtime in the workspace, and the total balance is checked at
//! the end — the classic TM litmus test.
//!
//! ```text
//! cargo run -p rhtm-bench --release --example bank_transfer
//! ```

use std::sync::Arc;

use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{Addr, MemConfig};
use rhtm_stm::Tl2Runtime;
use rhtm_workloads::WorkloadRng;

const ACCOUNTS: usize = 64;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 20_000;
const INITIAL_BALANCE: u64 = 1_000;

fn run_bank<R: TmRuntime>(runtime: Arc<R>) {
    let accounts: Arc<Vec<Addr>> =
        Arc::new((0..ACCOUNTS).map(|_| runtime.mem().alloc(8)).collect());
    {
        let heap = runtime.mem().heap();
        for &a in accounts.iter() {
            heap.store(a, INITIAL_BALANCE);
        }
    }

    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let runtime = Arc::clone(&runtime);
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut thread = runtime.register_thread();
                let mut rng = WorkloadRng::new(tid as u64);
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    let to = accounts[rng.next_below(ACCOUNTS as u64) as usize];
                    if from == to {
                        continue;
                    }
                    let amount = rng.next_below(10);
                    thread.execute(|tx| {
                        let f = tx.read(from)?;
                        if f < amount {
                            return Ok(());
                        }
                        let t = tx.read(to)?;
                        tx.write(from, f - amount)?;
                        tx.write(to, t + amount)?;
                        Ok(())
                    });
                }
                (thread.stats().commits(), thread.stats().aborts())
            })
        })
        .collect();

    let mut commits = 0;
    let mut aborts = 0;
    for h in handles {
        let (c, a) = h.join().unwrap();
        commits += c;
        aborts += a;
    }
    let elapsed = started.elapsed();
    let total: u64 = accounts.iter().map(|&a| runtime.mem().heap().load(a)).sum();
    let expected = (ACCOUNTS as u64) * INITIAL_BALANCE;
    println!(
        "{:<16} total={total} (expected {expected})  commits={commits}  aborts={aborts}  {:>8.0} txn/s",
        runtime.name(),
        commits as f64 / elapsed.as_secs_f64(),
    );
    assert_eq!(total, expected, "{} lost or created money!", runtime.name());
}

fn main() {
    let mem = || MemConfig::with_data_words(16 * 1024);
    println!("{THREADS} threads x {TRANSFERS_PER_THREAD} transfers over {ACCOUNTS} accounts\n");
    run_bank(Arc::new(HtmRuntime::new(mem(), HtmConfig::default())));
    run_bank(Arc::new(Tl2Runtime::new(mem())));
    run_bank(Arc::new(StdHytmRuntime::new(
        mem(),
        HtmConfig::default(),
        StdHytmConfig::default(),
    )));
    run_bank(Arc::new(RhRuntime::new(
        mem(),
        HtmConfig::default(),
        RhConfig::rh1_fast(),
    )));
    run_bank(Arc::new(RhRuntime::new(
        mem(),
        HtmConfig::default(),
        RhConfig::rh1_mixed(100),
    )));
    run_bank(Arc::new(RhRuntime::new(
        mem(),
        HtmConfig::default(),
        RhConfig::rh2(),
    )));
    println!("\nevery runtime preserved the total balance");
}
