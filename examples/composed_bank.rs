//! Composed transactions under the history checker: a `TxBank` debits a
//! hashtable account and appends to a skiplist audit ring **atomically in
//! one transaction**, while analytics threads run full-table scans — then
//! the recorded multi-threaded history is verified offline.
//!
//! Every runtime point is named by a `TmSpec` label; the recorded events
//! carry the commit path that served them (hardware fast path, mixed slow
//! path, software fallback), so a checker rejection would localise the bug
//! to the path that produced it.
//!
//! ```text
//! cargo run --release --example composed_bank
//! ```

use std::sync::Arc;

use rhtm_api::{PathKind, TmRuntime};
use rhtm_mem::MemConfig;
use rhtm_workloads::check::{check_all, record_bank_stress, Checker, ScanChecker};
use rhtm_workloads::{AlgoVisitor, TmSpec, TxBank};

const ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;
const AUDIT_CAP: u64 = 128;
const WORKERS: usize = 4;
const OPS_PER_WORKER: u64 = 5_000;

struct CheckedBankRun {
    bank: Arc<TxBank>,
}

impl AlgoVisitor for CheckedBankRun {
    /// `(events, per-path counts, violations)` for the report line.
    type Out = (usize, [u64; 3], Vec<String>);

    fn visit<R: TmRuntime>(self, runtime: R) -> Self::Out {
        let (checker, history) =
            record_bank_stress(&runtime, &self.bank, WORKERS, OPS_PER_WORKER, 42);
        let scans = ScanChecker {
            expected: self.bank.expected_total(),
        };
        let violations = check_all(&history, &[&checker as &dyn Checker, &scans])
            .iter()
            .map(|v| v.to_string())
            .collect();
        let (by_path, _) = history.path_counts();
        (history.len(), by_path, violations)
    }
}

fn main() {
    println!(
        "composed bank: {ACCOUNTS} accounts x {INITIAL_BALANCE}, audit ring of {AUDIT_CAP}, \
         {WORKERS} workers x {OPS_PER_WORKER} ops (~70% transfers, 20% lookups, 10% scans)\n"
    );
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}  verdict",
        "spec", "events", "hw-fast", "mixed", "software"
    );
    for label in [
        "htm",
        "standard-hytm",
        "tl2+gv5",
        "rh1-fast",
        "rh1-mixed-100",
        "rh2+gv6",
    ] {
        let spec = TmSpec::parse(label)
            .expect("spec label")
            .mem(MemConfig::with_data_words(
                TxBank::required_words(ACCOUNTS, AUDIT_CAP, WORKERS) + 8_192,
            ));
        let sim = spec.build_sim();
        let bank = Arc::new(TxBank::new(
            Arc::clone(&sim),
            ACCOUNTS,
            INITIAL_BALANCE,
            AUDIT_CAP,
        ));
        let (events, by_path, violations) = spec.visit_on(
            sim,
            CheckedBankRun {
                bank: Arc::clone(&bank),
            },
        );
        let verdict = if violations.is_empty() {
            "history checks clean".to_string()
        } else {
            format!("{} VIOLATIONS", violations.len())
        };
        println!(
            "{:<22} {:>8} {:>10} {:>10} {:>10}  {}",
            label,
            events,
            by_path[PathKind::HardwareFast.index()],
            by_path[PathKind::MixedSlow.index()],
            by_path[PathKind::Software.index()],
            verdict
        );
        for v in &violations {
            println!("    {v}");
        }
        assert!(violations.is_empty(), "{label}: checker rejected the run");
        assert!(bank.audit().is_well_formed_quiescent());
    }
    println!("\nall specs conserve the balance total and the audit ring replays cleanly");
}
